#include "sa/signature/serialize.hpp"

#include <cmath>
#include <cstring>

#include "sa/common/error.hpp"

namespace sa {

namespace {

constexpr std::uint32_t kMagic = 0x53414131;  // "SAA1"

void put_u32(ByteStream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(ByteStream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

class Reader {
 public:
  explicit Reader(const ByteStream& data) : data_(data) {}

  std::optional<std::uint32_t> u32() {
    if (at_ + 4 > data_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[at_ + i]) << (8 * i);
    }
    at_ += 4;
    return v;
  }

  std::optional<double> f64() {
    if (at_ + 8 > data_.size()) return std::nullopt;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[at_ + i]) << (8 * i);
    }
    at_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool done() const { return at_ == data_.size(); }

 private:
  const ByteStream& data_;
  std::size_t at_ = 0;
};

}  // namespace

ByteStream serialize_signature(const AoaSignature& sig) {
  SA_EXPECTS(sig.valid());
  const auto& spec = sig.spectrum();
  ByteStream out;
  put_u32(out, kMagic);
  put_u32(out, spec.wraps() ? 1u : 0u);
  put_u32(out, static_cast<std::uint32_t>(spec.size()));
  // Uniform grid: store start + step, then the values.
  put_f64(out, spec.angles_deg().front());
  put_f64(out, spec.step_deg());
  for (double v : spec.values()) put_f64(out, v);
  return out;
}

std::optional<AoaSignature> deserialize_signature(const ByteStream& data) {
  Reader r(data);
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;
  const auto wraps = r.u32();
  const auto n = r.u32();
  if (!wraps || !n || *n < 2 || *n > 1u << 20) return std::nullopt;
  const auto start = r.f64();
  const auto step = r.f64();
  if (!start || !step || *step <= 0.0) return std::nullopt;

  std::vector<double> angles(*n), values(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    angles[i] = *start + *step * i;
    const auto v = r.f64();
    if (!v || *v < 0.0 || !std::isfinite(*v)) return std::nullopt;
    values[i] = *v;
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return AoaSignature::from_spectrum(
      Pseudospectrum(std::move(angles), std::move(values), *wraps != 0));
}

}  // namespace sa
