#include "sa/signature/serialize.hpp"

#include <cmath>
#include <cstring>

#include "sa/common/error.hpp"

namespace sa {

namespace {

constexpr std::uint32_t kMagic = 0x53414131;   // "SAA1": one band
constexpr std::uint32_t kMagic2 = 0x53414132;  // "SAA2": subband container
constexpr std::uint32_t kMagicT = 0x53415431;  // "SAT1": tracker state
constexpr std::uint32_t kMaxBands = 1024;

void put_u32(ByteStream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(ByteStream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(ByteStream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

class Reader {
 public:
  explicit Reader(const ByteStream& data) : data_(data) {}

  std::optional<std::uint32_t> u32() {
    if (at_ + 4 > data_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[at_ + i]) << (8 * i);
    }
    at_ += 4;
    return v;
  }

  std::optional<std::uint64_t> u64() {
    if (at_ + 8 > data_.size()) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[at_ + i]) << (8 * i);
    }
    at_ += 8;
    return v;
  }

  std::optional<double> f64() {
    const auto bits = u64();
    if (!bits) return std::nullopt;
    double v;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }

  bool done() const { return at_ == data_.size(); }

 private:
  const ByteStream& data_;
  std::size_t at_ = 0;
};

/// One band's body: wrap flag, grid size, grid start + step, values —
/// exactly the legacy payload after the magic.
void put_band(ByteStream& out, const AoaSignature& sig) {
  const auto& spec = sig.spectrum();
  put_u32(out, spec.wraps() ? 1u : 0u);
  put_u32(out, static_cast<std::uint32_t>(spec.size()));
  // Uniform grid: store start + step, then the values.
  put_f64(out, spec.angles_deg().front());
  put_f64(out, spec.step_deg());
  for (double v : spec.values()) put_f64(out, v);
}

std::optional<AoaSignature> read_band(Reader& r) {
  const auto wraps = r.u32();
  const auto n = r.u32();
  if (!wraps || !n || *n < 2 || *n > 1u << 20) return std::nullopt;
  const auto start = r.f64();
  const auto step = r.f64();
  // NaN/inf must be rejected here, not left to throw inside
  // Pseudospectrum: the parser's contract is nullopt on malformed input.
  if (!start || !step || !std::isfinite(*start) || !std::isfinite(*step) ||
      *step <= 0.0) {
    return std::nullopt;
  }

  std::vector<double> angles(*n), values(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    angles[i] = *start + *step * i;
    const auto v = r.f64();
    if (!v || *v < 0.0 || !std::isfinite(*v)) return std::nullopt;
    values[i] = *v;
  }
  return AoaSignature::from_spectrum(
      Pseudospectrum(std::move(angles), std::move(values), *wraps != 0));
}

}  // namespace

ByteStream serialize_signature(const AoaSignature& sig) {
  SA_EXPECTS(sig.valid());
  ByteStream out;
  put_u32(out, kMagic);
  put_band(out, sig);
  return out;
}

std::optional<AoaSignature> deserialize_signature(const ByteStream& data) {
  Reader r(data);
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;
  auto band = read_band(r);
  if (!band || !r.done()) return std::nullopt;  // malformed or trailing garbage
  return band;
}

ByteStream serialize_signature(const SubbandSignature& sig) {
  SA_EXPECTS(sig.valid());
  if (sig.num_bands() == 1) return serialize_signature(sig.band(0));
  ByteStream out;
  put_u32(out, kMagic2);
  put_u32(out, static_cast<std::uint32_t>(sig.num_bands()));
  for (const auto& band : sig.bands()) put_band(out, band);
  return out;
}

std::optional<SubbandSignature> deserialize_subband_signature(
    const ByteStream& data) {
  Reader r(data);
  const auto magic = r.u32();
  if (!magic) return std::nullopt;
  if (*magic == kMagic) {
    auto band = read_band(r);
    if (!band || !r.done()) return std::nullopt;
    return SubbandSignature::single(std::move(*band));
  }
  if (*magic != kMagic2) return std::nullopt;
  const auto count = r.u32();
  if (!count || *count < 1 || *count > kMaxBands) return std::nullopt;
  std::vector<AoaSignature> bands;
  bands.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto band = read_band(r);
    if (!band) return std::nullopt;
    // All bands must share one grid (the SubbandSignature invariant).
    if (!bands.empty() &&
        (band->spectrum().size() != bands.front().spectrum().size() ||
         band->spectrum().wraps() != bands.front().spectrum().wraps())) {
      return std::nullopt;
    }
    bands.push_back(std::move(*band));
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return SubbandSignature(std::move(bands));
}

ByteStream serialize_tracker_snapshot(const TrackerSnapshot& snap) {
  ByteStream out;
  put_u32(out, kMagicT);
  put_u32(out, snap.trained ? 1u : 0u);  // flags; bit0 = trained
  put_u64(out, snap.training_seen);
  put_u64(out, snap.observations);
  put_u64(out, snap.mismatches);
  put_u32(out, static_cast<std::uint32_t>(snap.bands.size()));
  for (const auto& b : snap.bands) {
    SA_EXPECTS(b.angles_deg.size() == b.values.size());
    put_u32(out, b.wraps ? 1u : 0u);
    put_u32(out, static_cast<std::uint32_t>(b.angles_deg.size()));
    // Unlike put_band, the grid is stored verbatim (every angle, not
    // start+step): the accumulator grid came from repeated addition in
    // the scan loop and must survive the round-trip bit-for-bit.
    for (double a : b.angles_deg) put_f64(out, a);
    for (double v : b.values) put_f64(out, v);
  }
  return out;
}

std::optional<TrackerSnapshot> deserialize_tracker_snapshot(
    const ByteStream& data) {
  Reader r(data);
  const auto magic = r.u32();
  if (!magic || *magic != kMagicT) return std::nullopt;
  const auto flags = r.u32();
  if (!flags || (*flags & ~1u) != 0) return std::nullopt;
  const auto training_seen = r.u64();
  const auto observations = r.u64();
  const auto mismatches = r.u64();
  const auto band_count = r.u32();
  if (!training_seen || !observations || !mismatches || !band_count) {
    return std::nullopt;
  }
  if (*band_count > kMaxBands) return std::nullopt;

  TrackerSnapshot snap;
  snap.trained = (*flags & 1u) != 0;
  snap.training_seen = *training_seen;
  snap.observations = *observations;
  snap.mismatches = *mismatches;
  // A trained tracker always has a reference; an untrained one may have
  // zero bands (no observations yet).
  if (snap.trained && *band_count == 0) return std::nullopt;

  snap.bands.reserve(*band_count);
  for (std::uint32_t bi = 0; bi < *band_count; ++bi) {
    const auto wraps = r.u32();
    const auto n = r.u32();
    if (!wraps || !n || *n < 2 || *n > 1u << 20) return std::nullopt;
    TrackerSnapshot::Band band;
    band.wraps = *wraps != 0;
    band.angles_deg.resize(*n);
    band.values.resize(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      const auto a = r.f64();
      // restore() hands these straight to Pseudospectrum when the
      // reference materializes, whose contract demands a finite,
      // strictly ascending grid — enforce it here so an accepted
      // snapshot can never throw downstream.
      if (!a || !std::isfinite(*a)) return std::nullopt;
      if (i > 0 && *a <= band.angles_deg[i - 1]) return std::nullopt;
      band.angles_deg[i] = *a;
    }
    for (std::uint32_t i = 0; i < *n; ++i) {
      const auto v = r.f64();
      if (!v || !std::isfinite(*v) || *v < 0.0) return std::nullopt;
      band.values[i] = *v;
    }
    // All bands must share one shape (the SubbandSignature invariant
    // the materialized reference will be built under).
    if (!snap.bands.empty() &&
        (band.angles_deg.size() != snap.bands.front().angles_deg.size() ||
         band.wraps != snap.bands.front().wraps)) {
      return std::nullopt;
    }
    snap.bands.push_back(std::move(band));
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return snap;
}

}  // namespace sa
