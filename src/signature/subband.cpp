#include "sa/signature/subband.hpp"

#include <utility>

#include "sa/common/error.hpp"

namespace sa {

SubbandSignature::SubbandSignature(std::vector<AoaSignature> bands)
    : bands_(std::move(bands)) {
  SA_EXPECTS(!bands_.empty());
  const auto& first = bands_.front();
  SA_EXPECTS(first.valid());
  for (const auto& b : bands_) {
    SA_EXPECTS(b.valid());
    SA_EXPECTS(b.spectrum().size() == first.spectrum().size());
    SA_EXPECTS(b.spectrum().wraps() == first.spectrum().wraps());
  }
}

SubbandSignature SubbandSignature::single(AoaSignature band) {
  SA_EXPECTS(band.valid());
  SubbandSignature out;
  out.bands_.push_back(std::move(band));
  return out;
}

const AoaSignature& SubbandSignature::band(std::size_t i) const {
  SA_EXPECTS(i < bands_.size());
  return bands_[i];
}

AoaSignature SubbandSignature::fuse(const SignatureConfig& config) const {
  SA_EXPECTS(valid());
  if (bands_.size() == 1) return bands_.front();
  const auto& grid = bands_.front().spectrum();
  std::vector<double> mean(grid.size(), 0.0);
  for (const auto& b : bands_) {
    const auto& vals = b.spectrum().values();
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += vals[i];
  }
  const double inv = 1.0 / static_cast<double>(bands_.size());
  for (double& v : mean) v *= inv;
  return AoaSignature::from_spectrum(
      Pseudospectrum(grid.angles_deg(), std::move(mean), grid.wraps()),
      config);
}

AoaSignature SubbandSignature::fuse(const SignatureConfig& config,
                                    const std::vector<double>& weights) const {
  SA_EXPECTS(valid());
  SA_EXPECTS(weights.size() == bands_.size());
  double total = 0.0;
  for (double w : weights) {
    SA_EXPECTS(w >= 0.0);
    total += w;
  }
  // A single band is returned unchanged regardless of its weight, so
  // the positive-sum requirement only applies when there is actually a
  // combine to normalize.
  if (bands_.size() == 1) return bands_.front();
  SA_EXPECTS(total > 0.0);
  const auto& grid = bands_.front().spectrum();
  std::vector<double> mean(grid.size(), 0.0);
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    const auto& vals = bands_[b].spectrum().values();
    for (std::size_t i = 0; i < mean.size(); ++i) {
      mean[i] += weights[b] * vals[i];
    }
  }
  const double inv = 1.0 / total;
  for (double& v : mean) v *= inv;
  return AoaSignature::from_spectrum(
      Pseudospectrum(grid.angles_deg(), std::move(mean), grid.wraps()),
      config);
}

}  // namespace sa
