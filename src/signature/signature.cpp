#include "sa/signature/signature.hpp"

#include "sa/common/error.hpp"

namespace sa {

AoaSignature AoaSignature::from_spectrum(Pseudospectrum spectrum,
                                         const SignatureConfig& config) {
  SA_EXPECTS(spectrum.size() > 0);
  AoaSignature sig;
  spectrum.normalize();
  sig.peaks_ = spectrum.find_peaks(config.peak_min_prominence_db,
                                   config.peak_min_separation_deg);
  if (sig.peaks_.size() > config.max_peaks) {
    sig.peaks_.resize(config.max_peaks);
  }
  sig.direct_bearing_deg_ = spectrum.refined_max_angle_deg();
  sig.spectrum_ = std::move(spectrum);
  return sig;
}

std::vector<double> AoaSignature::reflection_bearings_deg() const {
  std::vector<double> out;
  for (std::size_t i = 1; i < peaks_.size(); ++i) {
    out.push_back(peaks_[i].angle_deg);
  }
  return out;
}

}  // namespace sa
