#include "sa/signature/tracker.hpp"

#include "sa/common/error.hpp"

namespace sa {

SignatureTracker::SignatureTracker(TrackerConfig config) : config_(config) {
  SA_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  SA_EXPECTS(config_.match_threshold >= 0.0 && config_.match_threshold <= 1.0);
  SA_EXPECTS(config_.training_packets >= 1);
}

void SignatureTracker::blend_into_reference(const AoaSignature& observed,
                                            double alpha) {
  const auto& vals = observed.spectrum().values();
  if (ref_values_.empty()) {
    ref_values_ = vals;
    ref_angles_ = observed.spectrum().angles_deg();
    ref_wraps_ = observed.spectrum().wraps();
    return;
  }
  SA_EXPECTS(vals.size() == ref_values_.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ref_values_[i] = (1.0 - alpha) * ref_values_[i] + alpha * vals[i];
  }
}

TrackerDecision SignatureTracker::observe(const AoaSignature& observed) {
  SA_EXPECTS(observed.valid());
  ++observations_;

  if (!trained_) {
    // Equal-weight average over the training window.
    ++training_seen_;
    blend_into_reference(observed, 1.0 / static_cast<double>(training_seen_));
    if (training_seen_ >= config_.training_packets) trained_ = true;
    return {TrackerVerdict::kTraining, 0.0};
  }

  const auto ref = reference();
  SA_ENSURES(ref.has_value());
  const double score = match_score(observed, *ref, config_.weights);
  if (score >= config_.match_threshold) {
    blend_into_reference(observed, config_.ewma_alpha);
    return {TrackerVerdict::kMatch, score};
  }
  ++mismatches_;
  return {TrackerVerdict::kMismatch, score};
}

std::optional<AoaSignature> SignatureTracker::reference() const {
  if (ref_values_.empty()) return std::nullopt;
  return AoaSignature::from_spectrum(
      Pseudospectrum(ref_angles_, ref_values_, ref_wraps_),
      config_.signature_config);
}

void SignatureTracker::reset() {
  trained_ = false;
  training_seen_ = 0;
  ref_values_.clear();
  ref_angles_.clear();
  observations_ = 0;
  mismatches_ = 0;
}

}  // namespace sa
