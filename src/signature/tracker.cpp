#include "sa/signature/tracker.hpp"

#include "sa/common/error.hpp"

namespace sa {

SignatureTracker::SignatureTracker(TrackerConfig config) : config_(config) {
  SA_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  SA_EXPECTS(config_.match_threshold >= 0.0 && config_.match_threshold <= 1.0);
  SA_EXPECTS(config_.training_packets >= 1);
}

void SignatureTracker::blend_into_reference(const SubbandSignature& observed,
                                            double alpha) {
  ref_cache_.reset();
  if (refs_.empty()) {
    refs_.resize(observed.num_bands());
    for (std::size_t b = 0; b < observed.num_bands(); ++b) {
      const auto& spec = observed.band(b).spectrum();
      refs_[b].values = spec.values();
      refs_[b].angles = spec.angles_deg();
      refs_[b].wraps = spec.wraps();
    }
    return;
  }
  SA_EXPECTS(refs_.size() == observed.num_bands());
  for (std::size_t b = 0; b < refs_.size(); ++b) {
    const auto& vals = observed.band(b).spectrum().values();
    SA_EXPECTS(vals.size() == refs_[b].values.size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      refs_[b].values[i] = (1.0 - alpha) * refs_[b].values[i] + alpha * vals[i];
    }
  }
}

TrackerDecision SignatureTracker::observe(const SubbandSignature& observed) {
  SA_EXPECTS(observed.valid());
  ++observations_;

  if (!trained_) {
    if (!refs_.empty() && refs_.size() != observed.num_bands()) {
      // Band count changed mid-training (an AP reconfiguration): restart
      // the accumulation rather than mixing incompatible spectra.
      refs_.clear();
      training_seen_ = 0;
    }
    // Equal-weight average over the training window.
    ++training_seen_;
    blend_into_reference(observed, 1.0 / static_cast<double>(training_seen_));
    if (training_seen_ >= config_.training_packets) trained_ = true;
    return {TrackerVerdict::kTraining, 0.0};
  }

  const SubbandSignature& ref = materialized_reference();
  if (ref.num_bands() != observed.num_bands()) {
    ++mismatches_;
    return {TrackerVerdict::kMismatch, 0.0};
  }
  const double score = match_score(observed, ref, config_.weights);
  if (score >= config_.match_threshold) {
    blend_into_reference(observed, config_.ewma_alpha);
    return {TrackerVerdict::kMatch, score};
  }
  ++mismatches_;
  return {TrackerVerdict::kMismatch, score};
}

TrackerDecision SignatureTracker::observe(const AoaSignature& observed) {
  SA_EXPECTS(observed.valid());
  return observe(SubbandSignature::single(observed));
}

const SubbandSignature& SignatureTracker::materialized_reference() const {
  SA_EXPECTS(!refs_.empty());
  if (!ref_cache_) {
    std::vector<AoaSignature> bands;
    bands.reserve(refs_.size());
    for (const auto& ref : refs_) {
      bands.push_back(AoaSignature::from_spectrum(
          Pseudospectrum(ref.angles, ref.values, ref.wraps),
          config_.signature_config));
    }
    ref_cache_ = SubbandSignature(std::move(bands));
  }
  return *ref_cache_;
}

std::optional<SubbandSignature> SignatureTracker::reference_bands() const {
  if (refs_.empty()) return std::nullopt;
  return materialized_reference();
}

std::optional<AoaSignature> SignatureTracker::reference() const {
  const auto bands = reference_bands();
  if (!bands) return std::nullopt;
  return bands->fuse(config_.signature_config);
}

TrackerSnapshot SignatureTracker::snapshot() const {
  TrackerSnapshot s;
  s.trained = trained_;
  s.training_seen = training_seen_;
  s.observations = observations_;
  s.mismatches = mismatches_;
  s.bands.reserve(refs_.size());
  for (const auto& ref : refs_) {
    TrackerSnapshot::Band b;
    b.angles_deg = ref.angles;
    b.values = ref.values;
    b.wraps = ref.wraps;
    s.bands.push_back(std::move(b));
  }
  return s;
}

void SignatureTracker::restore(const TrackerSnapshot& snap) {
  SA_EXPECTS(!snap.trained || !snap.bands.empty());
  refs_.clear();
  refs_.reserve(snap.bands.size());
  for (const auto& b : snap.bands) {
    SA_EXPECTS(b.angles_deg.size() == b.values.size());
    SA_EXPECTS(b.angles_deg.size() >= 2);
    BandReference ref;
    ref.values = b.values;
    ref.angles = b.angles_deg;
    ref.wraps = b.wraps;
    refs_.push_back(std::move(ref));
  }
  trained_ = snap.trained;
  training_seen_ = static_cast<std::size_t>(snap.training_seen);
  observations_ = static_cast<std::size_t>(snap.observations);
  mismatches_ = static_cast<std::size_t>(snap.mismatches);
  ref_cache_.reset();
}

void SignatureTracker::reset() {
  trained_ = false;
  training_seen_ = 0;
  refs_.clear();
  ref_cache_.reset();
  observations_ = 0;
  mismatches_ = 0;
}

}  // namespace sa
