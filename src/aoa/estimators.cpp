#include "sa/aoa/estimators.hpp"

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/linalg/eig.hpp"
#include "sa/linalg/lu.hpp"

namespace sa {

std::vector<double> scan_grid(const ArrayGeometry& geom, double step_deg) {
  SA_EXPECTS(step_deg > 0.0);
  const double lo = geom.scan_min_deg();
  const double hi = geom.scan_max_deg();
  std::vector<double> out;
  const bool wraps = geom.kind() != ArrayKind::kLinear;
  // Circular grids exclude the duplicate endpoint (360 == 0); linear
  // grids include both ends.
  for (double a = lo; wraps ? (a < hi - 1e-9) : (a <= hi + 1e-9); a += step_deg) {
    out.push_back(a);
  }
  return out;
}

namespace {

double information_criterion(const std::vector<double>& eigs,
                             std::size_t n_snapshots, std::size_t k,
                             bool mdl) {
  const std::size_t n = eigs.size();
  const std::size_t m = n - k;  // presumed noise eigenvalues (smallest m)
  double log_geo = 0.0;
  double arith = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double v = std::max(eigs[i], 1e-30);
    log_geo += std::log(v);
    arith += v;
  }
  log_geo /= static_cast<double>(m);
  arith /= static_cast<double>(m);
  const double ratio = log_geo - std::log(std::max(arith, 1e-30));
  const double data_term =
      -static_cast<double>(n_snapshots) * static_cast<double>(m) * ratio;
  const double dof = static_cast<double>(k) * (2.0 * n - k);
  const double penalty =
      mdl ? 0.5 * dof * std::log(static_cast<double>(n_snapshots))
          : dof;
  return data_term + penalty;
}

std::size_t argmin_criterion(const std::vector<double>& eigs,
                             std::size_t n_snapshots, bool mdl) {
  SA_EXPECTS(eigs.size() >= 2);
  SA_EXPECTS(n_snapshots >= 1);
  std::size_t best_k = 0;
  double best = information_criterion(eigs, n_snapshots, 0, mdl);
  for (std::size_t k = 1; k < eigs.size(); ++k) {
    const double c = information_criterion(eigs, n_snapshots, k, mdl);
    if (c < best) {
      best = c;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace

std::size_t estimate_num_sources_mdl(const std::vector<double>& eigenvalues,
                                     std::size_t n_snapshots) {
  return argmin_criterion(eigenvalues, n_snapshots, /*mdl=*/true);
}

std::size_t estimate_num_sources_aic(const std::vector<double>& eigenvalues,
                                     std::size_t n_snapshots) {
  return argmin_criterion(eigenvalues, n_snapshots, /*mdl=*/false);
}

MusicEstimator::MusicEstimator(MusicConfig config) : config_(config) {
  SA_EXPECTS(config_.scan_step_deg > 0.0);
}

MusicResult MusicEstimator::estimate(const CMat& covariance,
                                     const ArrayGeometry& geom,
                                     double lambda_m) const {
  return estimate(SpectralContext(covariance, geom, lambda_m,
                                  spectral_options()));
}

MusicResult MusicEstimator::estimate(const SpectralContext& ctx) const {
  const EigResult& eig = ctx.eig();
  const std::size_t n = ctx.processed().rows();

  std::size_t k;
  if (config_.num_sources) {
    k = std::min(*config_.num_sources, n - 1);
  } else {
    // Snapshot count is unknown at this layer; a packet's worth of
    // samples (hundreds) makes ln(N) ~ 6 — use a representative value.
    k = estimate_num_sources_mdl(eig.values, 320);
    k = std::min(std::max<std::size_t>(k, 1), n - 1);
  }

  // Noise projector P = sum of the n-k smallest eigenvectors' outer
  // products (shared through the context with root-MUSIC's polynomial);
  // MUSIC power = (a^H a) / (a^H P a).
  const CMat& noise_proj = ctx.noise_projector(k);

  const ArrayGeometry& scan_geom = ctx.processed_geometry();
  const std::vector<double> grid = scan_grid(scan_geom, config_.scan_step_deg);
  std::vector<double> values(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const CVec a = scan_geom.steering_vector(grid[g], ctx.lambda_m());
    const double denom = quadratic_form(a, noise_proj);
    const double num = norm(a) * norm(a);
    values[g] = num / std::max(denom, 1e-12 * num);
  }

  MusicResult out{
      Pseudospectrum(grid, std::move(values),
                     scan_geom.kind() != ArrayKind::kLinear),
      eig.values, k};
  return out;
}

Pseudospectrum bartlett_spectrum(const CMat& covariance,
                                 const ArrayGeometry& geom, double lambda_m,
                                 double step_deg) {
  SA_EXPECTS(covariance.rows() == geom.size());
  const std::vector<double> grid = scan_grid(geom, step_deg);
  std::vector<double> values(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const CVec a = geom.steering_vector(grid[g], lambda_m);
    const double num = quadratic_form(a, covariance);
    const double den = norm(a) * norm(a);
    values[g] = std::max(num, 0.0) / den;
  }
  return Pseudospectrum(grid, std::move(values),
                        geom.kind() != ArrayKind::kLinear);
}

Pseudospectrum capon_spectrum(const CMat& covariance, const ArrayGeometry& geom,
                              double lambda_m, double step_deg,
                              double loading) {
  SA_EXPECTS(covariance.rows() == geom.size());
  CMat loaded = covariance;
  diagonal_load_inplace(loaded, loading);
  const auto rinv = inverse(loaded);
  SA_EXPECTS(rinv.has_value());
  return capon_spectrum_from_inverse(*rinv, geom, lambda_m, step_deg);
}

Pseudospectrum capon_spectrum_from_inverse(const CMat& r_inverse,
                                           const ArrayGeometry& geom,
                                           double lambda_m, double step_deg) {
  SA_EXPECTS(r_inverse.rows() == geom.size());
  const std::vector<double> grid = scan_grid(geom, step_deg);
  std::vector<double> values(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const CVec a = geom.steering_vector(grid[g], lambda_m);
    const double q = quadratic_form(a, r_inverse);
    values[g] = 1.0 / std::max(q, 1e-30);
  }
  return Pseudospectrum(grid, std::move(values),
                        geom.kind() != ArrayKind::kLinear);
}

double power_weighted_direct_bearing_deg(const Pseudospectrum& music_spectrum,
                                         const std::vector<SpectrumPeak>& peaks,
                                         const CMat& covariance,
                                         const ArrayGeometry& geom,
                                         double lambda_m) {
  if (peaks.empty()) return music_spectrum.refined_max_angle_deg();
  CMat loaded = covariance;
  diagonal_load_inplace(loaded, 1e-3);
  const auto rinv = inverse(loaded);
  SA_EXPECTS(rinv.has_value());
  return power_weighted_direct_bearing_with_inverse_deg(
      music_spectrum, peaks, *rinv, geom, lambda_m);
}

double power_weighted_direct_bearing_with_inverse_deg(
    const Pseudospectrum& music_spectrum, const std::vector<SpectrumPeak>& peaks,
    const CMat& r_inverse, const ArrayGeometry& geom, double lambda_m) {
  if (peaks.empty()) return music_spectrum.refined_max_angle_deg();
  // Capon power at each candidate: a sharper power estimate than
  // Bartlett on a small-aperture array, so clustered reflections leak
  // less into each other's candidate bearings.
  double best_power = -1.0;
  double best_angle = peaks.front().angle_deg;
  for (const auto& p : peaks) {
    const CVec a = geom.steering_vector(p.angle_deg, lambda_m);
    const double power = 1.0 / std::max(quadratic_form(a, r_inverse), 1e-30);
    if (power > best_power) {
      best_power = power;
      best_angle = p.angle_deg;
    }
  }
  // Sub-grid refinement around the chosen peak with a parabolic fit on
  // the MUSIC spectrum (reuse the global refiner when it's the max).
  if (std::abs(best_angle - music_spectrum.max_angle_deg()) < 1e-9) {
    return music_spectrum.refined_max_angle_deg();
  }
  return best_angle;
}

double two_antenna_aoa_deg(cd x1, cd x2) {
  const double dphi = wrap_pi(std::arg(x2) - std::arg(x1));
  // Equation 1: theta = arcsin(dphi / pi) at half-wavelength spacing.
  const double s = std::clamp(dphi / kPi, -1.0, 1.0);
  return rad2deg(std::asin(s));
}

}  // namespace sa
