#include "sa/aoa/covariance.hpp"

#include "sa/common/error.hpp"

namespace sa {

namespace {

/// Shared accumulation core: identical term order for every entry point,
/// so the allocating, range, and scratch variants are all bit-identical.
void covariance_core(const CMat& samples, std::size_t col_begin,
                     std::size_t col_end, CMat& r) {
  SA_EXPECTS(samples.rows() >= 1);
  SA_EXPECTS(col_begin < col_end && col_end <= samples.cols());
  const std::size_t n = samples.rows();
  const std::size_t t_len = col_end - col_begin;
  const std::size_t stride = samples.cols();
  const cd* data = samples.raw();
  r.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const cd* si = data + i * stride;
    for (std::size_t j = i; j < n; ++j) {
      const cd* sj = data + j * stride;
      cd acc{0.0, 0.0};
      for (std::size_t t = col_begin; t < col_end; ++t) {
        acc += si[t] * std::conj(sj[t]);
      }
      acc /= static_cast<double>(t_len);
      r(i, j) = acc;
      r(j, i) = std::conj(acc);
    }
  }
}

}  // namespace

CMat sample_covariance(const CMat& samples) {
  SA_EXPECTS(samples.cols() >= 1);
  CMat r;
  covariance_core(samples, 0, samples.cols(), r);
  return r;
}

CMat sample_covariance_cols(const CMat& samples, std::size_t col_begin,
                            std::size_t col_end) {
  CMat r;
  covariance_core(samples, col_begin, col_end, r);
  return r;
}

void sample_covariance_into(const CMat& samples, CMat& r) {
  SA_EXPECTS(samples.cols() >= 1);
  covariance_core(samples, 0, samples.cols(), r);
}

CMat forward_backward_average(const CMat& r) {
  SA_EXPECTS(r.rows() == r.cols());
  const std::size_t n = r.rows();
  CMat out(n, n);
  // Out-of-place on purpose: reads never alias the writes, so this
  // pipelines/vectorizes where the in-place variant's read-modify-write
  // pairs cannot.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (J conj(R) J)(i, j) = conj(R(n-1-i, n-1-j)).
      out(i, j) = (r(i, j) + std::conj(r(n - 1 - i, n - 1 - j))) * 0.5;
    }
  }
  return out;
}

void forward_backward_average_inplace(CMat& r) {
  SA_EXPECTS(r.rows() == r.cols());
  const std::size_t n = r.rows();
  // (J conj(R) J)(i, j) = conj(R(n-1-i, n-1-j)): entries pair up with
  // their point reflection through the matrix centre, so both members of
  // a pair are rewritten together from their saved originals. Rows in
  // the top half pair with distinct bottom-half rows; odd n leaves a
  // middle row whose left half pairs with its right half around the
  // self-paired centre element.
  auto average_pair = [&](std::size_t i, std::size_t j) {
    const std::size_t pi = n - 1 - i;
    const std::size_t pj = n - 1 - j;
    const cd a = r(i, j);
    const cd b = r(pi, pj);
    r(i, j) = (a + std::conj(b)) * 0.5;
    r(pi, pj) = (b + std::conj(a)) * 0.5;
  };
  for (std::size_t i = 0; i < n / 2; ++i) {
    for (std::size_t j = 0; j < n; ++j) average_pair(i, j);
  }
  if (n % 2 != 0) {
    const std::size_t mid = n / 2;
    for (std::size_t j = 0; j < n / 2; ++j) average_pair(mid, j);
    const cd c = r(mid, mid);
    r(mid, mid) = (c + std::conj(c)) * 0.5;
  }
}

CMat spatial_smooth(const CMat& r, std::size_t subarray_size) {
  SA_EXPECTS(r.rows() == r.cols());
  const std::size_t n = r.rows();
  SA_EXPECTS(subarray_size >= 2 && subarray_size <= n);
  const std::size_t n_sub = n - subarray_size + 1;
  CMat out(subarray_size, subarray_size);
  for (std::size_t s = 0; s < n_sub; ++s) {
    for (std::size_t i = 0; i < subarray_size; ++i) {
      for (std::size_t j = 0; j < subarray_size; ++j) {
        out(i, j) += r(s + i, s + j);
      }
    }
  }
  out *= cd{1.0 / static_cast<double>(n_sub), 0.0};
  return out;
}

CMat diagonal_load(const CMat& r, double eps) {
  CMat out = r;
  diagonal_load_inplace(out, eps);
  return out;
}

void diagonal_load_inplace(CMat& r, double eps) {
  SA_EXPECTS(r.rows() == r.cols());
  SA_EXPECTS(eps >= 0.0);
  const std::size_t n = r.rows();
  const double load = eps * r.trace().real() / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) r(i, i) += cd{load, 0.0};
}

}  // namespace sa
