#include "sa/aoa/pseudospectrum.hpp"

#include <algorithm>
#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

Pseudospectrum::Pseudospectrum(std::vector<double> angles_deg,
                               std::vector<double> values, bool wraps)
    : angles_(std::move(angles_deg)), values_(std::move(values)), wraps_(wraps) {
  SA_EXPECTS(angles_.size() == values_.size());
  SA_EXPECTS(angles_.size() >= 2);
  for (std::size_t i = 1; i < angles_.size(); ++i) {
    SA_EXPECTS(angles_[i] > angles_[i - 1]);
  }
  for (double v : values_) SA_EXPECTS(v >= 0.0);
}

double Pseudospectrum::step_deg() const { return angles_[1] - angles_[0]; }

std::vector<double> Pseudospectrum::values_db() const {
  const double peak = max_value();
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out[i] = to_db(peak > 0.0 ? values_[i] / peak : 0.0);
  }
  return out;
}

double Pseudospectrum::max_angle_deg() const {
  const auto it = std::max_element(values_.begin(), values_.end());
  return angles_[static_cast<std::size_t>(it - values_.begin())];
}

double Pseudospectrum::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Pseudospectrum::value_at(double angle_deg) const {
  const double lo = angles_.front();
  const double step = step_deg();
  double a = angle_deg;
  if (wraps_) {
    const double span = 360.0;
    a = lo + std::fmod(std::fmod(a - lo, span) + span, span);
  } else {
    a = std::clamp(a, angles_.front(), angles_.back());
  }
  const double pos = (a - lo) / step;
  const auto i0 = static_cast<std::size_t>(std::floor(pos));
  const double frac = pos - static_cast<double>(i0);
  const std::size_t i1 = wraps_ ? (i0 + 1) % values_.size()
                                : std::min(i0 + 1, values_.size() - 1);
  if (i0 >= values_.size()) return values_.back();
  return values_[i0] * (1.0 - frac) + values_[i1] * frac;
}

std::vector<SpectrumPeak> Pseudospectrum::find_peaks(
    double min_prominence_db, double min_separation_deg) const {
  const std::size_t n = values_.size();
  const double peak_val = max_value();
  if (peak_val <= 0.0) return {};

  auto at = [&](std::ptrdiff_t i) -> double {
    if (wraps_) {
      const auto m = static_cast<std::ptrdiff_t>(n);
      return values_[static_cast<std::size_t>(((i % m) + m) % m)];
    }
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(n)) return -1.0;
    return values_[static_cast<std::size_t>(i)];
  };

  std::vector<SpectrumPeak> peaks;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values_[i];
    const auto si = static_cast<std::ptrdiff_t>(i);
    if (!(v > at(si - 1) && v >= at(si + 1))) continue;

    // Prominence: walk outwards to the nearest higher point on each
    // side; the peak's prominence is its height above the higher of the
    // two deepest valleys crossed.
    auto walk = [&](int dir) -> double {
      double valley = v;
      for (std::size_t s = 1; s < n; ++s) {
        const double w = at(si + dir * static_cast<std::ptrdiff_t>(s));
        if (w < 0.0) break;  // hit a non-wrapping boundary
        valley = std::min(valley, w);
        if (w > v) return valley;
      }
      return valley;
    };
    const double valley = std::max(walk(-1), walk(+1));
    const double prom_db = to_db(v / std::max(valley, 1e-30));

    if (prom_db < min_prominence_db) continue;
    SpectrumPeak p;
    p.angle_deg = angles_[i];
    p.value = v;
    p.value_db = to_db(v / peak_val);
    p.prominence_db = prom_db;
    peaks.push_back(p);
  }

  // Strongest first, then drop peaks too close to a stronger one.
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectrumPeak& a, const SpectrumPeak& b) {
              return a.value > b.value;
            });
  std::vector<SpectrumPeak> out;
  for (const auto& p : peaks) {
    bool keep = true;
    for (const auto& q : out) {
      const double d = wraps_ ? angular_distance_deg(p.angle_deg, q.angle_deg)
                              : std::abs(p.angle_deg - q.angle_deg);
      if (d < min_separation_deg) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(p);
  }
  return out;
}

double Pseudospectrum::refined_max_angle_deg() const {
  const auto it = std::max_element(values_.begin(), values_.end());
  const auto i = static_cast<std::size_t>(it - values_.begin());
  const auto si = static_cast<std::ptrdiff_t>(i);
  const std::size_t n = values_.size();

  auto at = [&](std::ptrdiff_t k) -> double {
    if (wraps_) {
      const auto m = static_cast<std::ptrdiff_t>(n);
      return values_[static_cast<std::size_t>(((k % m) + m) % m)];
    }
    if (k < 0 || k >= static_cast<std::ptrdiff_t>(n)) return values_[i];
    return values_[static_cast<std::size_t>(k)];
  };
  const double y0 = at(si - 1), y1 = at(si), y2 = at(si + 1);
  const double denom = y0 - 2.0 * y1 + y2;
  double offset = 0.0;
  if (std::abs(denom) > 1e-30) {
    offset = 0.5 * (y0 - y2) / denom;
    offset = std::clamp(offset, -1.0, 1.0);
  }
  double angle = angles_[i] + offset * step_deg();
  if (wraps_) angle = wrap_deg360(angle);
  return angle;
}

void Pseudospectrum::normalize() {
  const double peak = max_value();
  if (peak <= 0.0) return;
  for (double& v : values_) v /= peak;
}

}  // namespace sa
