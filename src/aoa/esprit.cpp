#include "sa/aoa/esprit.hpp"

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/linalg/lu.hpp"
#include "sa/linalg/polyroots.hpp"

namespace sa {

namespace {

/// Characteristic polynomial of a k x k matrix via Faddeev-LeVerrier
/// (ascending powers, monic). Numerically fine for the k <= 7 rotation
/// matrices ESPRIT produces on an 8-antenna array.
CVec characteristic_polynomial(const CMat& a) {
  const std::size_t k = a.rows();
  CVec coeffs(k + 1, cd{0.0, 0.0});
  coeffs[k] = cd{1.0, 0.0};
  CMat m = CMat::identity(k);
  for (std::size_t step = 1; step <= k; ++step) {
    const CMat am = a * m;
    const cd c = am.trace() * cd{-1.0 / static_cast<double>(step), 0.0};
    coeffs[k - step] = c;
    if (step < k) {
      m = am;
      for (std::size_t i = 0; i < k; ++i) m(i, i) += c;
    }
  }
  return coeffs;
}

}  // namespace

std::vector<double> esprit_bearings_from_subspace(const EigResult& eig,
                                                  std::size_t num_sources,
                                                  double spacing_m,
                                                  double lambda_m) {
  const std::size_t n = eig.vectors.rows();
  SA_EXPECTS(n >= 2);
  SA_EXPECTS(spacing_m > 0.0 && lambda_m > 0.0);
  SA_EXPECTS(num_sources >= 1);
  const std::size_t k = std::min(num_sources, n - 1);

  // Signal subspace Es: the k dominant eigenvectors (eigenvalues are
  // ascending, so the last k columns). Es1/Es2 are its first/last n-1
  // rows — the two shift-invariant subarrays.
  CMat es1(n - 1, k), es2(n - 1, k);
  for (std::size_t c = 0; c < k; ++c) {
    const CVec col = eig.vectors.col(n - 1 - c);
    for (std::size_t r = 0; r + 1 < n; ++r) {
      es1(r, c) = col[r];
      es2(r, c) = col[r + 1];
    }
  }

  // Least squares: Psi = (Es1^H Es1)^{-1} Es1^H Es2. Es2 ~ Es1 Psi, and
  // Psi's eigenvalues are the subarray rotation exp(j 2 pi d sin(th)/l).
  const CMat es1h = es1.hermitian();
  const LuDecomposition lu(es1h * es1);
  if (lu.singular()) return {};
  const CMat psi = lu.solve(es1h * es2);

  CVec rotations;
  try {
    rotations = polynomial_roots(characteristic_polynomial(psi));
  } catch (const NumericalError&) {
    return {};  // defective rotation matrix; degrade to the spectrum
  }

  // Rank by closeness to the unit circle (a true rotation eigenvalue has
  // |z| = 1; noise pushes it off), like root-MUSIC's root ranking.
  struct Cand {
    double bearing_deg;
    double dist;
  };
  std::vector<Cand> cands;
  for (const cd& z : rotations) {
    const double s = std::arg(z) * lambda_m / (kTwoPi * spacing_m);
    if (s < -1.0 || s > 1.0) continue;  // outside the visible region
    cands.push_back({rad2deg(std::asin(s)), std::abs(1.0 - std::abs(z))});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.dist < b.dist; });

  std::vector<double> out;
  out.reserve(cands.size());
  for (const Cand& c : cands) out.push_back(c.bearing_deg);
  return out;
}

std::vector<double> esprit(const CMat& covariance, const ArrayGeometry& geom,
                           double lambda_m, const EspritConfig& config) {
  SA_EXPECTS(geom.kind() == ArrayKind::kLinear);
  SA_EXPECTS(covariance.rows() == covariance.cols());
  SA_EXPECTS(covariance.rows() == geom.size());
  SA_EXPECTS(lambda_m > 0.0);
  const std::size_t n = geom.size();
  SA_EXPECTS(n >= 2);
  const double spacing = distance(geom.positions()[0], geom.positions()[1]);

  CMat r = covariance;
  if (config.forward_backward) forward_backward_average_inplace(r);
  const EigResult eig = eigh(r);

  std::size_t k = config.num_sources;
  if (k == 0) {
    k = std::max<std::size_t>(estimate_num_sources_mdl(eig.values, 320), 1);
  }
  k = std::min(k, n - 1);
  return esprit_bearings_from_subspace(eig, k, spacing, lambda_m);
}

}  // namespace sa
