#include "sa/aoa/spectral.hpp"

#include <utility>
#include <vector>

#include "sa/aoa/covariance.hpp"
#include "sa/common/error.hpp"
#include "sa/common/geometry.hpp"
#include "sa/common/logging.hpp"
#include "sa/linalg/lu.hpp"

namespace sa {

SpectralContext::SpectralContext(CMat covariance, ArrayGeometry geom,
                                 double lambda_m, SpectralOptions options)
    : raw_(std::move(covariance)),
      geom_(std::move(geom)),
      lambda_m_(lambda_m),
      options_(options) {
  SA_EXPECTS(raw_.rows() == raw_.cols());
  SA_EXPECTS(raw_.rows() == geom_.size());
  SA_EXPECTS(lambda_m_ > 0.0);
}

void SpectralContext::ensure_processed() const {
  if (processed_ready_) return;
  processed_geom_ = geom_;
  bool smoothed = false;
  if (options_.smoothing_subarray >= 2) {
    if (geom_.kind() == ArrayKind::kLinear) {
      processed_ = spatial_smooth(raw_, options_.smoothing_subarray);
      smoothed = true;
      // The smoothed matrix corresponds to the leading subarray; preserve
      // ULA bearing conventions for it.
      const auto& pos = geom_.positions();
      const double spacing = distance(pos[0], pos[1]);
      processed_geom_ =
          ArrayGeometry::uniform_linear(options_.smoothing_subarray, spacing);
    } else {
      log_warn() << "SpectralContext: spatial smoothing requested for a "
                    "non-linear array; ignoring";
    }
  }
  // FB averaging requires the exchange matrix J to map the array onto
  // its own mirror image, which holds for a ULA's element ordering but
  // not for our circular arrays (element n-1-m is a rotation, not a
  // reflection, of element m). Restrict it to linear geometries.
  const bool fb = options_.forward_backward &&
                  processed_geom_.kind() == ArrayKind::kLinear;
  if (smoothed) {
    // The subarray matrix is already this context's own scratch copy.
    if (fb) forward_backward_average_inplace(processed_);
  } else if (fb) {
    // Single pass straight off the raw covariance: the pre-refactor
    // pipeline copied the covariance first and then allocated a second
    // matrix for the average — one full-matrix copy more than needed.
    processed_ = forward_backward_average(raw_);
  } else {
    processed_ = raw_;
  }
  processed_ready_ = true;
}

const CMat& SpectralContext::processed() const {
  ensure_processed();
  return processed_;
}

const ArrayGeometry& SpectralContext::processed_geometry() const {
  ensure_processed();
  return processed_geom_;
}

const EigResult& SpectralContext::eig() const {
  if (!eig_) eig_ = eigh(processed());
  return *eig_;
}

const CMat& SpectralContext::noise_projector(std::size_t num_sources) const {
  if (!projector_sources_ || *projector_sources_ != num_sources) {
    const EigResult& e = eig();
    const std::size_t n = processed().rows();
    SA_EXPECTS(num_sources < n);
    CMat proj(n, n);
    for (std::size_t i = 0; i < n - num_sources; ++i) {
      proj += CMat::outer(e.vectors.col(i));
    }
    projector_ = std::move(proj);
    projector_sources_ = num_sources;
  }
  return projector_;
}

const CMat& SpectralContext::inverse(double loading_eps) const {
  if (!inverse_eps_ || *inverse_eps_ != loading_eps) {
    CMat loaded = raw_;
    diagonal_load_inplace(loaded, loading_eps);
    auto inv = sa::inverse(loaded);
    SA_EXPECTS(inv.has_value());
    inverse_ = std::move(*inv);
    inverse_eps_ = loading_eps;
  }
  return inverse_;
}

}  // namespace sa
