#include "sa/aoa/rootmusic.hpp"

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/linalg/eig.hpp"
#include "sa/linalg/polyroots.hpp"

namespace sa {

std::vector<RootMusicSource> root_music(const CMat& covariance,
                                        const ArrayGeometry& geom,
                                        double lambda_m,
                                        const RootMusicConfig& config) {
  SA_EXPECTS(geom.kind() == ArrayKind::kLinear);
  SA_EXPECTS(covariance.rows() == covariance.cols());
  SA_EXPECTS(covariance.rows() == geom.size());
  SA_EXPECTS(lambda_m > 0.0);
  const std::size_t n = geom.size();
  SA_EXPECTS(n >= 2);
  const double spacing = distance(geom.positions()[0], geom.positions()[1]);

  CMat r = covariance;
  if (config.forward_backward) forward_backward_average_inplace(r);
  const EigResult eig = eigh(r);

  std::size_t k = config.num_sources;
  if (k == 0) {
    k = std::max<std::size_t>(estimate_num_sources_mdl(eig.values, 320), 1);
  }
  k = std::min(k, n - 1);

  // Noise projector P = sum of the n-k smallest eigenvectors.
  CMat proj(n, n);
  for (std::size_t i = 0; i < n - k; ++i) {
    proj += CMat::outer(eig.vectors.col(i));
  }
  return root_music_from_projector(proj, spacing, lambda_m, k);
}

std::vector<RootMusicSource> root_music_from_projector(
    const CMat& noise_projector, double spacing_m, double lambda_m,
    std::size_t num_sources) {
  SA_EXPECTS(noise_projector.rows() == noise_projector.cols());
  SA_EXPECTS(noise_projector.rows() >= 2);
  SA_EXPECTS(spacing_m > 0.0 && lambda_m > 0.0);
  SA_EXPECTS(num_sources >= 1);
  const CMat& proj = noise_projector;
  const std::size_t n = proj.rows();
  const std::size_t k = num_sources;

  // Polynomial coefficients: c_m = sum of the m-th diagonal of P,
  // m in [-(n-1), n-1]; p(z) = sum c_m z^{m+n-1}. Conjugate symmetry
  // (c_{-m} = conj(c_m)) puts roots in reciprocal-conjugate pairs.
  CVec coeffs(2 * n - 1, cd{0.0, 0.0});
  for (int m = -static_cast<int>(n) + 1; m < static_cast<int>(n); ++m) {
    cd acc{0.0, 0.0};
    for (std::size_t row = 0; row < n; ++row) {
      const int col = static_cast<int>(row) + m;
      if (col < 0 || col >= static_cast<int>(n)) continue;
      acc += proj(row, static_cast<std::size_t>(col));
    }
    coeffs[static_cast<std::size_t>(m + static_cast<int>(n) - 1)] = acc;
  }

  const CVec roots = polynomial_roots(coeffs);

  // Keep roots inside (or on) the unit circle, rank by closeness to it.
  struct Cand {
    cd z;
    double dist;
  };
  std::vector<Cand> cands;
  for (const cd& z : roots) {
    const double mag = std::abs(z);
    if (mag > 1.0 + 1e-6) continue;  // reciprocal partner handles it
    cands.push_back({z, std::abs(1.0 - mag)});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.dist < b.dist; });

  std::vector<RootMusicSource> out;
  for (const Cand& c : cands) {
    if (out.size() >= k) break;
    // arg(z) = 2 pi d sin(theta) / lambda.
    const double s = std::arg(c.z) * lambda_m / (kTwoPi * spacing_m);
    if (s < -1.0 || s > 1.0) continue;  // outside the visible region
    RootMusicSource src;
    src.bearing_deg = rad2deg(std::asin(s));
    src.root_distance = c.dist;
    out.push_back(src);
  }
  return out;
}

}  // namespace sa
