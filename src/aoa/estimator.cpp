#include "sa/aoa/estimator.hpp"

#include "sa/aoa/rootmusic.hpp"
#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

namespace sa {

const char* to_string(AoaBackend backend) {
  switch (backend) {
    case AoaBackend::kMusic:
      return "music";
    case AoaBackend::kCapon:
      return "capon";
    case AoaBackend::kBartlett:
      return "bartlett";
    case AoaBackend::kRootMusic:
      return "root-music";
  }
  return "unknown";
}

std::optional<AoaBackend> aoa_backend_from_string(std::string_view name) {
  if (name == "music") return AoaBackend::kMusic;
  if (name == "capon" || name == "mvdr") return AoaBackend::kCapon;
  if (name == "bartlett") return AoaBackend::kBartlett;
  if (name == "root-music" || name == "rootmusic") return AoaBackend::kRootMusic;
  return std::nullopt;
}

namespace {

/// The paper's estimator: a thin adapter so interface results are
/// byte-identical to calling MusicEstimator directly.
class MusicBackend : public AoaEstimator {
 public:
  explicit MusicBackend(const AoaEstimatorConfig& cfg) : music_(cfg.music) {}

  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const override {
    return music_.estimate(covariance, geom, lambda_m);
  }
  AoaBackend backend() const override { return AoaBackend::kMusic; }

 private:
  MusicEstimator music_;
};

class CaponBackend : public AoaEstimator {
 public:
  explicit CaponBackend(const AoaEstimatorConfig& cfg)
      : step_deg_(cfg.music.scan_step_deg), loading_(cfg.capon_loading) {}

  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const override {
    MusicResult out;
    out.spectrum =
        capon_spectrum(covariance, geom, lambda_m, step_deg_, loading_);
    return out;
  }
  AoaBackend backend() const override { return AoaBackend::kCapon; }

 private:
  double step_deg_;
  double loading_;
};

class BartlettBackend : public AoaEstimator {
 public:
  explicit BartlettBackend(const AoaEstimatorConfig& cfg)
      : step_deg_(cfg.music.scan_step_deg) {}

  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const override {
    MusicResult out;
    out.spectrum = bartlett_spectrum(covariance, geom, lambda_m, step_deg_);
    return out;
  }
  AoaBackend backend() const override { return AoaBackend::kBartlett; }

 private:
  double step_deg_;
};

/// Grid MUSIC for the spectrum (signatures and tracking keep working),
/// plus the search-free polynomial bearings on linear arrays. Non-linear
/// geometries have no root-MUSIC formulation; they degrade to plain MUSIC.
class RootMusicBackend : public AoaEstimator {
 public:
  explicit RootMusicBackend(const AoaEstimatorConfig& cfg)
      : music_(cfg.music), root_([&] {
          RootMusicConfig rc;
          rc.num_sources = cfg.music.num_sources.value_or(0);
          rc.forward_backward = cfg.music.forward_backward;
          return rc;
        }()) {}

  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const override {
    MusicResult out = music_.estimate(covariance, geom, lambda_m);
    if (geom.kind() == ArrayKind::kLinear) {
      for (const auto& src : root_music(covariance, geom, lambda_m, root_)) {
        out.source_bearings_deg.push_back(src.bearing_deg);
      }
    }
    return out;
  }
  AoaBackend backend() const override { return AoaBackend::kRootMusic; }

 private:
  MusicEstimator music_;
  RootMusicConfig root_;
};

}  // namespace

std::unique_ptr<AoaEstimator> make_aoa_estimator(
    AoaBackend backend, const AoaEstimatorConfig& config) {
  switch (backend) {
    case AoaBackend::kMusic:
      return std::make_unique<MusicBackend>(config);
    case AoaBackend::kCapon:
      return std::make_unique<CaponBackend>(config);
    case AoaBackend::kBartlett:
      return std::make_unique<BartlettBackend>(config);
    case AoaBackend::kRootMusic:
      return std::make_unique<RootMusicBackend>(config);
  }
  throw InvalidArgument("make_aoa_estimator: unknown backend");
}

}  // namespace sa
