#include "sa/aoa/estimator.hpp"

#include "sa/aoa/esprit.hpp"
#include "sa/aoa/rootmusic.hpp"
#include "sa/common/error.hpp"
#include "sa/common/geometry.hpp"

namespace sa {

const char* to_string(AoaBackend backend) {
  switch (backend) {
    case AoaBackend::kMusic:
      return "music";
    case AoaBackend::kCapon:
      return "capon";
    case AoaBackend::kBartlett:
      return "bartlett";
    case AoaBackend::kRootMusic:
      return "root-music";
    case AoaBackend::kEsprit:
      return "esprit";
  }
  return "unknown";
}

std::optional<AoaBackend> aoa_backend_from_string(std::string_view name) {
  if (name == "music") return AoaBackend::kMusic;
  if (name == "capon" || name == "mvdr") return AoaBackend::kCapon;
  if (name == "bartlett") return AoaBackend::kBartlett;
  if (name == "root-music" || name == "rootmusic" || name == "root_music") {
    return AoaBackend::kRootMusic;
  }
  if (name == "esprit") return AoaBackend::kEsprit;
  return std::nullopt;
}

const char* aoa_backend_names() {
  return "music, capon (alias: mvdr), bartlett, "
         "root-music (aliases: rootmusic, root_music), esprit";
}

MusicResult AoaEstimator::estimate(const CMat& covariance,
                                   const ArrayGeometry& geom,
                                   double lambda_m) const {
  return estimate(SpectralContext(covariance, geom, lambda_m,
                                  spectral_options()));
}

namespace {

/// ULA element spacing of a context's scan geometry; 0 when not linear —
/// the search-free backends' "degrade to plain MUSIC" signal.
double linear_spacing_or_zero(const ArrayGeometry& geom) {
  if (geom.kind() != ArrayKind::kLinear || geom.size() < 2) return 0.0;
  return distance(geom.positions()[0], geom.positions()[1]);
}

/// The paper's estimator: a thin adapter so interface results are
/// byte-identical to calling MusicEstimator directly.
class MusicBackend : public AoaEstimator {
 public:
  explicit MusicBackend(const AoaEstimatorConfig& cfg) : music_(cfg.music) {}

  MusicResult estimate(const SpectralContext& ctx) const override {
    return music_.estimate(ctx);
  }
  SpectralOptions spectral_options() const override {
    return music_.spectral_options();
  }
  AoaBackend backend() const override { return AoaBackend::kMusic; }

 protected:
  MusicEstimator music_;
};

class CaponBackend : public AoaEstimator {
 public:
  explicit CaponBackend(const AoaEstimatorConfig& cfg)
      : options_({cfg.music.forward_backward, cfg.music.smoothing_subarray}),
        step_deg_(cfg.music.scan_step_deg),
        loading_(cfg.capon_loading) {}

  MusicResult estimate(const SpectralContext& ctx) const override {
    MusicResult out;
    out.spectrum = capon_spectrum_from_inverse(
        ctx.inverse(loading_), ctx.geometry(), ctx.lambda_m(), step_deg_);
    return out;
  }
  SpectralOptions spectral_options() const override { return options_; }
  AoaBackend backend() const override { return AoaBackend::kCapon; }

 private:
  SpectralOptions options_;
  double step_deg_;
  double loading_;
};

class BartlettBackend : public AoaEstimator {
 public:
  explicit BartlettBackend(const AoaEstimatorConfig& cfg)
      : options_({cfg.music.forward_backward, cfg.music.smoothing_subarray}),
        step_deg_(cfg.music.scan_step_deg) {}

  MusicResult estimate(const SpectralContext& ctx) const override {
    MusicResult out;
    out.spectrum = bartlett_spectrum(ctx.covariance(), ctx.geometry(),
                                     ctx.lambda_m(), step_deg_);
    return out;
  }
  SpectralOptions spectral_options() const override { return options_; }
  AoaBackend backend() const override { return AoaBackend::kBartlett; }

 private:
  SpectralOptions options_;
  double step_deg_;
};

/// Grid MUSIC for the spectrum (signatures and tracking keep working),
/// plus the search-free polynomial bearings on linear arrays — both fed
/// from the context's single EVD and cached noise projector. Non-linear
/// geometries have no root-MUSIC formulation; they degrade to plain
/// MUSIC.
class RootMusicBackend : public MusicBackend {
 public:
  using MusicBackend::MusicBackend;

  MusicResult estimate(const SpectralContext& ctx) const override {
    MusicResult out = music_.estimate(ctx);
    const double spacing = linear_spacing_or_zero(ctx.processed_geometry());
    if (spacing > 0.0 && out.num_sources >= 1) {
      for (const auto& src :
           root_music_from_projector(ctx.noise_projector(out.num_sources),
                                     spacing, ctx.lambda_m(),
                                     out.num_sources)) {
        out.source_bearings_deg.push_back(src.bearing_deg);
      }
    }
    return out;
  }
  AoaBackend backend() const override { return AoaBackend::kRootMusic; }
};

/// Grid MUSIC spectrum plus LS-ESPRIT bearings from the context's signal
/// subspace (linear arrays only; same degradation rule as root-MUSIC).
class EspritBackend : public MusicBackend {
 public:
  using MusicBackend::MusicBackend;

  MusicResult estimate(const SpectralContext& ctx) const override {
    MusicResult out = music_.estimate(ctx);
    const double spacing = linear_spacing_or_zero(ctx.processed_geometry());
    if (spacing > 0.0 && out.num_sources >= 1) {
      out.source_bearings_deg = esprit_bearings_from_subspace(
          ctx.eig(), out.num_sources, spacing, ctx.lambda_m());
    }
    return out;
  }
  AoaBackend backend() const override { return AoaBackend::kEsprit; }
};

}  // namespace

std::unique_ptr<AoaEstimator> make_aoa_estimator(
    AoaBackend backend, const AoaEstimatorConfig& config) {
  switch (backend) {
    case AoaBackend::kMusic:
      return std::make_unique<MusicBackend>(config);
    case AoaBackend::kCapon:
      return std::make_unique<CaponBackend>(config);
    case AoaBackend::kBartlett:
      return std::make_unique<BartlettBackend>(config);
    case AoaBackend::kRootMusic:
      return std::make_unique<RootMusicBackend>(config);
    case AoaBackend::kEsprit:
      return std::make_unique<EspritBackend>(config);
  }
  throw InvalidArgument("make_aoa_estimator: unknown backend");
}

}  // namespace sa
