#include "sa/engine/sharded_spoof.hpp"

#include <algorithm>

#include "sa/common/error.hpp"

namespace sa {

ShardedSpoofDetector::ShardedSpoofDetector(TrackerConfig tracker_config,
                                           std::size_t num_shards,
                                           std::size_t max_tracked_macs) {
  SA_EXPECTS(num_shards >= 1);
  SA_EXPECTS(max_tracked_macs == 0 || max_tracked_macs >= num_shards);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    // Distribute the budget's remainder so the shard caps sum to
    // exactly max_tracked_macs.
    const std::size_t per_shard =
        max_tracked_macs == 0 ? 0 : (max_tracked_macs + i) / num_shards;
    shards_.push_back(std::make_unique<Shard>(tracker_config, per_shard));
  }
}

std::size_t ShardedSpoofDetector::shard_of(const MacAddress& source) const {
  return std::hash<MacAddress>{}(source) % shards_.size();
}

SpoofObservation ShardedSpoofDetector::observe(
    const MacAddress& source, const SubbandSignature& signature) {
  Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.detector.observe(source, signature);
}

SpoofObservation ShardedSpoofDetector::observe(const MacAddress& source,
                                               const AoaSignature& signature) {
  return observe(source, SubbandSignature::single(signature));
}

const SignatureTracker* ShardedSpoofDetector::tracker(
    const MacAddress& source) const {
  const Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.detector.tracker(source);
}

void ShardedSpoofDetector::forget(const MacAddress& source) {
  Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.detector.forget(source);
}

SpoofDetectorStats ShardedSpoofDetector::stats() const {
  SpoofDetectorStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const SpoofDetectorStats s = shard->detector.stats();
    total.packets += s.packets;
    total.alarms += s.alarms;
    total.tracked_macs += s.tracked_macs;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace sa
