#include "sa/engine/sharded_spoof.hpp"

#include <algorithm>

#include "sa/common/error.hpp"

namespace sa {

ShardedSpoofDetector::ShardedSpoofDetector(TrackerConfig tracker_config,
                                           std::size_t num_shards,
                                           std::size_t max_tracked_macs,
                                           std::size_t idle_expiry_frames) {
  SA_EXPECTS(num_shards >= 1);
  SA_EXPECTS(max_tracked_macs == 0 || max_tracked_macs >= num_shards);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    // Distribute the budget's remainder so the shard caps sum to
    // exactly max_tracked_macs.
    const std::size_t per_shard =
        max_tracked_macs == 0 ? 0 : (max_tracked_macs + i) / num_shards;
    shards_.push_back(
        std::make_unique<Shard>(tracker_config, per_shard, idle_expiry_frames));
  }
}

std::size_t ShardedSpoofDetector::shard_of(const MacAddress& source) const {
  return std::hash<MacAddress>{}(source) % shards_.size();
}

SpoofObservation ShardedSpoofDetector::observe(
    const MacAddress& source, const SubbandSignature& signature) {
  Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.detector.observe(source, signature);
}

SpoofObservation ShardedSpoofDetector::observe(const MacAddress& source,
                                               const AoaSignature& signature) {
  return observe(source, SubbandSignature::single(signature));
}

SpoofTicket ShardedSpoofDetector::reserve(const MacAddress& source) {
  const std::size_t s = shard_of(source);
  Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  return SpoofTicket{s, shard.reserved++};
}

void ShardedSpoofDetector::fulfil(const SpoofTicket& ticket,
                                  const MacAddress& source,
                                  const SubbandSignature& signature,
                                  FulfilCallback done) {
  SA_EXPECTS(ticket.shard < shards_.size());
  SA_EXPECTS(done != nullptr);
  Shard& shard = *shards_[ticket.shard];
  struct Completed {
    FulfilCallback done;
    SpoofObservation observation;
    std::exception_ptr error;
  };
  // Completions are collected under the lock but invoked outside it: a
  // `done` that re-enters the detector (or is just slow) must not extend
  // the shard's critical section. A throwing observe is captured as the
  // owning ticket's error and the shard advances regardless — otherwise
  // one poisoned frame would park every successor forever.
  std::vector<Completed> completed;
  auto apply = [&](const MacAddress& mac, const SubbandSignature& sig,
                   FulfilCallback cb) {
    Completed c;
    c.done = std::move(cb);
    try {
      c.observation = shard.detector.observe(mac, sig);
    } catch (...) {
      c.error = std::current_exception();
    }
    completed.push_back(std::move(c));
    ++shard.applied;
  };
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    SA_EXPECTS(ticket.seq >= shard.applied && ticket.seq < shard.reserved);
    if (ticket.seq != shard.applied) {
      SA_EXPECTS(shard.parked.find(ticket.seq) == shard.parked.end());
      shard.parked.emplace(ticket.seq,
                           Parked{&source, &signature, std::move(done)});
      return;
    }
    apply(source, signature, std::move(done));
    // Close the gap: apply any parked successors in reserved order.
    for (auto it = shard.parked.find(shard.applied);
         it != shard.parked.end() && it->first == shard.applied;
         it = shard.parked.find(shard.applied)) {
      Parked parked = std::move(it->second);
      shard.parked.erase(it);
      apply(*parked.source, *parked.signature, std::move(parked.done));
    }
  }
  for (auto& c : completed) c.done(c.observation, c.error);
}

const SignatureTracker* ShardedSpoofDetector::tracker(
    const MacAddress& source) const {
  const Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.detector.tracker(source);
}

void ShardedSpoofDetector::forget(const MacAddress& source) {
  Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.detector.forget(source);
}

std::optional<TrackerSnapshot> ShardedSpoofDetector::export_tracker(
    const MacAddress& source) const {
  const Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.detector.export_tracker(source);
}

void ShardedSpoofDetector::import_tracker(const MacAddress& source,
                                          const TrackerSnapshot& snap) {
  Shard& shard = *shards_[shard_of(source)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.detector.import_tracker(source, snap);
}

SpoofDetectorStats ShardedSpoofDetector::stats() const {
  SpoofDetectorStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const SpoofDetectorStats s = shard->detector.stats();
    total.packets += s.packets;
    total.alarms += s.alarms;
    total.tracked_macs += s.tracked_macs;
    total.evictions += s.evictions;
    total.expirations += s.expirations;
  }
  return total;
}

}  // namespace sa
