#include "sa/engine/session.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>

#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sa {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_spin(std::size_t configured) {
  if (configured != SessionConfig::kAutoSpin) return configured;
  // On a single hardware thread, spinning can only delay the producer
  // the consumer is waiting on; park immediately.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? 128 : 0;
}

/// Pin the calling thread to `core`; returns whether the pin took.
bool pin_current_thread(int core) {
#if defined(__linux__)
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace

EngineSession::EngineSession(SessionConfig config,
                             std::vector<AccessPoint*> aps, DecisionSink sink)
    : config_(std::move(config)),
      aps_(std::move(aps)),
      spoof_(config_.engine.coordinator.tracker, config_.engine.num_shards,
             config_.engine.coordinator.max_tracked_macs,
             config_.engine.coordinator.spoof_idle_frames),
      coordinator_(config_.engine.coordinator),
      sink_(std::move(sink)),
      resolved_spin_(resolve_spin(config_.poll_spin)) {
  SA_EXPECTS(!aps_.empty());
  SA_EXPECTS(sink_ != nullptr);
  SA_EXPECTS(config_.max_inflight_rounds >= 1);
  SA_EXPECTS(config_.max_pending_chunks >= 1);

  const std::size_t n_aps = aps_.size();
  streams_.reserve(n_aps);
  lanes_.reserve(n_aps);
  for (AccessPoint* ap : aps_) {
    SA_EXPECTS(ap != nullptr);
    positions_.push_back(ap->config().position);
    streams_.push_back(
        std::make_unique<StreamingReceiver>(*ap, config_.engine.streaming));
    lanes_.push_back(std::make_unique<SubmitLane>(config_.max_pending_chunks));
  }

  const std::size_t n_workers = resolve_threads(config_.engine.num_threads);
  const std::size_t aps_per_worker = (n_aps + n_workers - 1) / n_workers;
  // The round bound caps ApJobs per worker, so the work ring can be
  // sized to never fill; decide/done rings can in principle overflow
  // (candidate counts are unbounded) and their producers handle it.
  const std::size_t work_cap =
      (config_.max_inflight_rounds + 1) * aps_per_worker;
  workers_.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(
        work_cap, /*decide_cap=*/256, /*done_cap=*/512,
        config_.engine.coordinator));
  }

  front_ = std::thread([this] { frontend_loop(); });
  sequencer_ = std::thread([this] { sequencer_loop(); });
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

EngineSession::~EngineSession() {
  try {
    close();
  } catch (const std::exception& e) {
    log_error() << "EngineSession close failed in destructor: " << e.what();
  } catch (...) {
    log_error() << "EngineSession close failed in destructor";
  }
}

void EngineSession::fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      error_ = std::move(error);
      failed_.store(true, std::memory_order_release);
    }
  }
  front_bell_.ring();
  seq_bell_.ring();
  submit_bell_.ring();
  done_bell_.ring();
  for (auto& wk : workers_) wk->bell.ring();
}

void EngineSession::throw_if_failed() const {
  if (failed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(error_mu_);
    std::rethrow_exception(error_);
  }
}

bool EngineSession::round_formable() const {
  for (const auto& lane : lanes_) {
    if (lane->ring.empty()) return false;
  }
  return true;
}

void EngineSession::submit(std::size_t ap_index, CMat chunk) {
  SA_EXPECTS(ap_index < aps_.size());
  SA_EXPECTS(chunk.rows() == aps_[ap_index]->config().geometry.size());
  // Reject non-finite IQ at the ingest boundary: a NaN or Inf sample
  // would otherwise propagate through conditioning into the covariance
  // eigendecomposition and trip eig()'s Hermitian precondition deep in
  // a worker (the robustness gap the capture fuzz loop found). Every
  // ingest path funnels through here — DeploymentEngine::ingest() and
  // capture replay included — so one check covers them all, before the
  // chunk is recorded or enters the rings.
  {
    const cd* samples = chunk.raw();
    const std::size_t n = chunk.rows() * chunk.cols();
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(samples[i].real()) ||
          !std::isfinite(samples[i].imag())) {
        throw InvalidArgument(
            "EngineSession::submit: non-finite IQ sample (index " +
            std::to_string(i) + ", ap " + std::to_string(ap_index) + ")");
      }
    }
  }
  SubmitLane& lane = *lanes_[ap_index];
  // Same-AP submitters serialize here; the ring itself stays SPSC. The
  // dataplane never touches this mutex.
  std::lock_guard<std::mutex> producer(lane.producer_mu);
  throw_if_failed();
  if (closing_.load(std::memory_order_acquire)) {
    throw StateError("EngineSession::submit after close()");
  }
  // Honor the configured bound exactly even when the ring's power-of-two
  // capacity rounded above it.
  if (lane.ring.size() >= config_.max_pending_chunks) {
    stats_.submit_ring_full_blocks.fetch_add(1, std::memory_order_relaxed);
    submit_bell_.wait(
        [&] {
          return failed_.load(std::memory_order_acquire) ||
                 closing_.load(std::memory_order_acquire) ||
                 lane.ring.size() < config_.max_pending_chunks;
        },
        /*spin_budget=*/0, &stats_.spin_polls, &stats_.parks);
    throw_if_failed();
    if (closing_.load(std::memory_order_acquire)) {
      throw StateError("EngineSession::submit after close()");
    }
  }
  CaptureWriter* capture = config_.engine.capture;
  if (capture != nullptr && !capture->closed()) {
    // Still under producer_mu, so this AP's chunk records are written in
    // submission order with consistent round/base bookkeeping. The AP
    // base offsets this session's local indices into the fleet-global
    // AP id space (0 outside a fleet).
    capture->record_chunk(config_.engine.capture_ap_base + ap_index,
                          lane.rounds, lane.base, chunk);
  }
  ++lane.rounds;
  lane.base += chunk.cols();
  const bool pushed = lane.ring.try_push(std::move(chunk));
  SA_EXPECTS(pushed);  // capacity >= max_pending_chunks by construction
  atomic_max(stats_.max_submit_ring_occupancy, lane.ring.size());
  stats_.chunks_submitted.fetch_add(1, std::memory_order_relaxed);
  front_bell_.ring();
}

void EngineSession::submit_round(std::vector<CMat> chunks) {
  SA_EXPECTS(chunks.size() == aps_.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    submit(i, std::move(chunks[i]));
  }
}

void EngineSession::drain() {
  throw_if_failed();
  if (closing_.load(std::memory_order_acquire)) {
    throw StateError("EngineSession::drain after close()");
  }
  if (CaptureWriter* capture = config_.engine.capture;
      capture != nullptr && !capture->closed() &&
      config_.engine.capture_drains) {
    // The marker lands after every chunk this caller submitted (same
    // thread) — exactly the boundary replay must reproduce. A fleet
    // session suppresses this (capture_drains=false): the coordinator
    // records one global marker per drain_all() instead.
    capture->record_drain();
  }
  const std::uint64_t ticket =
      drains_requested_.fetch_add(1, std::memory_order_acq_rel) + 1;
  front_bell_.ring();
  done_bell_.wait(
      [&] {
        return failed_.load(std::memory_order_acquire) ||
               drains_completed_.load(std::memory_order_acquire) >= ticket;
      },
      /*spin_budget=*/0, &stats_.spin_polls, &stats_.parks);
  throw_if_failed();
}

void EngineSession::wait_idle() {
  done_bell_.wait(
      [&] {
        return failed_.load(std::memory_order_acquire) ||
               (!round_formable() &&
                rounds_in_flight_.load(std::memory_order_acquire) == 0);
      },
      /*spin_budget=*/0, &stats_.spin_polls, &stats_.parks);
  throw_if_failed();
}

void EngineSession::close() {
  // Serializes concurrent close() calls: the loser waits here and then
  // sees closed_, instead of racing the winner into a double join.
  std::lock_guard<std::mutex> close_lock(close_mu_);
  if (closed_) return;
  std::exception_ptr drain_error;
  try {
    drain();
  } catch (...) {
    drain_error = std::current_exception();
  }
  closing_.store(true, std::memory_order_release);
  front_bell_.ring();
  seq_bell_.ring();
  submit_bell_.ring();
  done_bell_.ring();
  for (auto& wk : workers_) wk->bell.ring();
  if (front_.joinable()) front_.join();
  if (sequencer_.joinable()) sequencer_.join();
  for (auto& wk : workers_) {
    if (wk->thread.joinable()) wk->thread.join();
  }
  closed_ = true;
  if (drain_error) std::rethrow_exception(drain_error);
}

SessionStats EngineSession::session_stats() const {
  SessionStats s;
  s.chunks_submitted = stats_.chunks_submitted.load(std::memory_order_acquire);
  s.rounds_completed = stats_.rounds_completed.load(std::memory_order_acquire);
  s.rounds_retired = stats_.rounds_retired.load(std::memory_order_acquire);
  s.decisions_emitted =
      stats_.decisions_emitted.load(std::memory_order_acquire);
  s.stale_retries = stats_.stale_retries.load(std::memory_order_acquire);
  s.stale_skips = stats_.stale_skips.load(std::memory_order_acquire);
  s.max_inflight_frames =
      stats_.max_inflight_frames.load(std::memory_order_acquire);
  s.max_admitted_rounds =
      stats_.max_admitted_rounds.load(std::memory_order_acquire);
  s.max_overlapped_rounds =
      stats_.max_overlapped_rounds.load(std::memory_order_acquire);
  s.submit_ring_full_blocks =
      stats_.submit_ring_full_blocks.load(std::memory_order_acquire);
  s.max_submit_ring_occupancy =
      stats_.max_submit_ring_occupancy.load(std::memory_order_acquire);
  s.worker_bursts = stats_.worker_bursts.load(std::memory_order_acquire);
  s.worker_jobs = stats_.worker_jobs.load(std::memory_order_acquire);
  s.max_worker_burst = stats_.max_worker_burst.load(std::memory_order_acquire);
  s.spin_polls = stats_.spin_polls.load(std::memory_order_acquire);
  s.parks = stats_.parks.load(std::memory_order_acquire);
  s.workers_pinned = stats_.workers_pinned.load(std::memory_order_acquire);
  return s;
}

void EngineSession::refresh_chain() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  coordinator_.reset_chain_stats();
  for (const auto& wk : workers_) {
    coordinator_.add_chain_stats_from(wk->coordinator);
  }
}

Coordinator::Stats EngineSession::stats() const {
  refresh_chain();
  return coordinator_.stats();
}

const PolicyChain& EngineSession::chain() const {
  refresh_chain();
  return coordinator_.chain();
}

// ---------------------------------------------------- fleet handoff hooks

ClientHandoffState EngineSession::export_client_state(const MacAddress& mac) {
  ClientHandoffState st;
  st.tracker = spoof_.export_tracker(mac);
  // The MAC's stateful policies live on the worker owning its shard.
  Worker& wk = *workers_[spoof_.shard_of(mac) % workers_.size()];
  PolicyChain& chain = wk.coordinator.mutable_chain();
  const std::size_t frame_clock =
      stats_.decisions_emitted.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    SecurityPolicy& p = chain.policy_mutable(i);
    if (auto* rate = dynamic_cast<RateLimitPolicy*>(&p)) {
      rate->advance_to(frame_clock);
      st.rate_in_window = rate->export_residue(mac);
    } else if (auto* acl = dynamic_cast<AclPolicy*>(&p)) {
      st.acl_allowed = acl->acl().is_allowed(mac);
    }
  }
  return st;
}

void EngineSession::import_client_state(const MacAddress& mac,
                                        const ClientHandoffState& state) {
  if (state.tracker) spoof_.import_tracker(mac, *state.tracker);
  const std::size_t owner = spoof_.shard_of(mac) % workers_.size();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    PolicyChain& chain = workers_[w]->coordinator.mutable_chain();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      SecurityPolicy& p = chain.policy_mutable(i);
      if (auto* acl = dynamic_cast<AclPolicy*>(&p)) {
        if (state.acl_allowed) {
          if (*state.acl_allowed) {
            acl->mutable_acl().allow(mac);
          } else {
            acl->mutable_acl().revoke(mac);
          }
        }
      } else if (auto* rate = dynamic_cast<RateLimitPolicy*>(&p)) {
        if (w == owner && state.rate_in_window) {
          rate->import_residue(mac, *state.rate_in_window);
        }
      }
    }
  }
}

void EngineSession::forget_client(const MacAddress& mac) {
  spoof_.forget(mac);
  Worker& wk = *workers_[spoof_.shard_of(mac) % workers_.size()];
  PolicyChain& chain = wk.coordinator.mutable_chain();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (auto* rate = dynamic_cast<RateLimitPolicy*>(&chain.policy_mutable(i))) {
      rate->forget(mac);
    }
  }
}

// ----------------------------------------------------------- front-end

void EngineSession::frontend_loop() {
  const std::size_t n_aps = aps_.size();
  const std::size_t n_workers = workers_.size();
  std::uint64_t next_round_id = 0;
  std::uint64_t drains_issued = 0;
  try {
    for (;;) {
      front_bell_.wait(
          [&] {
            if (closing_.load(std::memory_order_acquire) ||
                failed_.load(std::memory_order_acquire)) {
              return true;
            }
            if (rounds_in_flight_.load(std::memory_order_acquire) >=
                config_.max_inflight_rounds) {
              return false;
            }
            if (config_.max_inflight_frames > 0) {
              // Scan-gated dispatch: every in-flight round must have
              // reported its candidate count (otherwise the budget
              // can't be checked), and the budget must have room. A
              // round larger than the whole budget still runs — alone.
              if (rounds_dispatched_.load(std::memory_order_acquire) !=
                  rounds_grouped_.load(std::memory_order_acquire)) {
                return false;
              }
              const std::size_t inflight =
                  inflight_frames_.load(std::memory_order_acquire);
              if (inflight != 0 && inflight >= config_.max_inflight_frames) {
                return false;
              }
            }
            return round_formable() ||
                   drains_issued <
                       drains_requested_.load(std::memory_order_acquire);
          },
          resolved_spin_, &stats_.spin_polls, &stats_.parks);
      if (closing_.load(std::memory_order_acquire) ||
          failed_.load(std::memory_order_acquire)) {
        return;
      }

      // Count the round in flight *before* popping its chunks, so
      // wait_idle() can never observe empty rings with the round not
      // yet accounted for.
      rounds_in_flight_.fetch_add(1, std::memory_order_acq_rel);

      // A complete round off the rings; during a drain, a padded round
      // for ragged leftovers; then the drain's final flush pass.
      std::vector<std::optional<CMat>> chunks(n_aps);
      bool any_chunk = false;
      const bool drain_pending =
          drains_issued < drains_requested_.load(std::memory_order_acquire);
      if (round_formable() || drain_pending) {
        for (std::size_t i = 0; i < n_aps; ++i) {
          CMat c;
          if (lanes_[i]->ring.try_pop(c)) {
            chunks[i] = std::move(c);
            any_chunk = true;
          }
        }
      }
      bool final_pass = false;
      std::uint64_t drain_tag = 0;
      if (!any_chunk) {
        // Rings are empty and a drain is pending: this round is its
        // final flush pass.
        final_pass = true;
        drain_tag = ++drains_issued;
      }
      submit_bell_.ring();

      const std::uint64_t id = ++next_round_id;
      const std::uint64_t dispatched =
          rounds_dispatched_.fetch_add(1, std::memory_order_acq_rel) + 1;
      atomic_max(stats_.max_overlapped_rounds,
                 dispatched - rounds_grouped_.load(std::memory_order_acquire));

      for (std::size_t i = 0; i < n_aps; ++i) {
        Worker& wk = *workers_[i % n_workers];
        ApJob job;
        job.round = id;
        job.ap = i;
        job.chunk = std::move(chunks[i]);
        job.final_pass = final_pass;
        job.drain_tag = drain_tag;
        // The work ring is sized for max_inflight_rounds, so this never
        // blocks in practice; the loop is a correctness backstop.
        while (!wk.work.try_push(std::move(job))) {
          wk.bell.ring();
          std::this_thread::yield();
        }
      }
      // One doorbell per dispatched round, not per ApJob: ringing a
      // parked worker takes its mutex, so per-job rings force needless
      // wakeup churn when several of the round's APs share a worker.
      for (std::size_t w = 0; w < n_workers && w < n_aps; ++w) {
        workers_[w]->bell.ring();
      }
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

// -------------------------------------------------------------- workers

void EngineSession::worker_loop(std::size_t w) {
  Worker& wk = *workers_[w];
  if (config_.placement.pin_workers) {
    int core = -1;
    if (!config_.placement.cores.empty()) {
      core = config_.placement.cores[w % config_.placement.cores.size()];
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) core = static_cast<int>(w % hw);
    }
    if (pin_current_thread(core)) {
      stats_.workers_pinned.fetch_add(1, std::memory_order_relaxed);
    }
  }
  try {
    for (;;) {
      wk.bell.wait(
          [&] {
            return closing_.load(std::memory_order_acquire) ||
                   failed_.load(std::memory_order_acquire) ||
                   !wk.decide.empty() || !wk.work.empty();
          },
          resolved_spin_, &stats_.spin_polls, &stats_.parks);
      if (closing_.load(std::memory_order_acquire) ||
          failed_.load(std::memory_order_acquire)) {
        return;
      }
      // A "burst" is everything processed between two waits. With a
      // single run-to-completion worker a burst can span the entire
      // workload (new jobs keep arriving while it drains), so the
      // counters are published per job, not at burst end — a stats
      // snapshot taken mid-burst must still see the work.
      std::size_t burst = 0;
      auto count_job = [&] {
        if (++burst == 1) {
          stats_.worker_bursts.fetch_add(1, std::memory_order_relaxed);
        }
        stats_.worker_jobs.fetch_add(1, std::memory_order_relaxed);
      };
      DecideJob dj;
      ApJob job;
      // Decisions first: they gate round completion and budget release.
      while (wk.decide.try_pop(dj)) {
        process_decide_job(wk, std::move(dj));
        count_job();
      }
      while (wk.work.try_pop(job)) {
        process_ap_job(wk, std::move(job));
        count_job();
        while (wk.decide.try_pop(dj)) {
          process_decide_job(wk, std::move(dj));
          count_job();
        }
      }
      if (burst != 0) atomic_max(stats_.max_worker_burst, burst);
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

void EngineSession::process_ap_job(Worker& wk, ApJob job) {
  StreamingReceiver& rx = *streams_[job.ap];
  // Run-to-completion, lock-free: this worker is the only thread that
  // ever touches this receiver, and it committed round N-1 before
  // scanning round N — the lock-step schedule StreamingReceiver
  // documents as byte-identical to any commit-behind pipeline.
  StreamingReceiver::Scan scan = rx.scan(job.chunk ? &*job.chunk : nullptr);
  const std::size_t watermark = rx.emit_watermark();
  const std::size_t n_cands = scan.candidates.size();
  std::vector<std::optional<ReceivedPacket>> processed(n_cands);
  std::size_t retries = 0;
  std::size_t skips = 0;
  for (std::size_t j = 0; j < n_cands; ++j) {
    const auto& cand = scan.candidates[j];
    if (cand.absolute_start < scan.prev_seen) {
      // Candidate predates this round's chunk: either an earlier commit
      // already emitted it (skip — commit would dedupe it anyway) or it
      // is a genuine deferred retry.
      if (cand.absolute_start < watermark) {
        ++skips;
        continue;
      }
      ++retries;
    }
    processed[j] =
        aps_[job.ap]->demodulate(*scan.conditioned, cand.detection,
                                 &wk.scratch);
  }
  Completion done;
  done.kind = Completion::Kind::kApDone;
  done.round = job.round;
  done.ap = job.ap;
  done.packets = rx.commit(scan, std::move(processed), job.final_pass);
  done.candidates = n_cands;
  done.retries = retries;
  done.skips = skips;
  done.drain_tag = job.drain_tag;
  done.had_chunk = job.chunk.has_value();
  push_completion(wk, std::move(done));
}

void EngineSession::process_decide_job(Worker& wk, DecideJob job) {
  // This worker owns shard_of(source MAC): the spoof observe and every
  // stateful policy in its chain see this MAC's frames in global
  // sequence order, judged against state no other thread touches.
  std::optional<SpoofObservation> so;
  const ApObservation& best = Coordinator::best_observation(job.observations);
  if (coordinator_.wants_spoof() && best.packet.frame) {
    so = spoof_.observe(best.packet.frame->addr2, best.packet.subband);
  }
  Completion done;
  done.kind = Completion::Kind::kDecision;
  done.round = job.round;
  done.sequence = job.sequence;
  done.absolute_start = job.absolute_start;
  done.decision =
      wk.coordinator.process_prejudged(job.observations, so, job.sequence);
  push_completion(wk, std::move(done));
}

void EngineSession::push_completion(Worker& wk, Completion c) {
  while (!wk.done.try_push(std::move(c))) {
    // Ring full: the sequencer drains eagerly, so just prod it and
    // retry. The sequencer never blocks on this worker, so this cannot
    // deadlock.
    seq_bell_.ring();
    std::this_thread::yield();
    if (failed_.load(std::memory_order_acquire)) return;
  }
  seq_bell_.ring();
}

// ------------------------------------------------------------ sequencer

void EngineSession::sequencer_loop() {
  const std::size_t n_aps = aps_.size();
  const std::size_t n_workers = workers_.size();

  /// A round whose per-AP completions are still being collected.
  struct RoundAgg {
    std::size_t aps_done = 0;
    std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap;
    std::size_t candidates = 0;
    std::size_t retries = 0;
    std::size_t skips = 0;
    std::uint64_t drain_tag = 0;
    bool had_chunk = false;
  };
  /// A grouped round whose decisions are still outstanding.
  struct OpenRound {
    std::uint64_t id = 0;
    std::size_t candidates = 0;
    std::size_t first_sequence = 0;
    std::size_t expected = 0;
    std::size_t done = 0;
    std::uint64_t drain_tag = 0;
    bool had_chunk = false;
  };

  std::map<std::uint64_t, RoundAgg> collecting;
  std::uint64_t next_round_to_group = 1;
  std::deque<OpenRound> open;  // strictly ascending round ids
  std::map<std::size_t, Completion> ready;  // sequence -> decision
  std::size_t next_emit = 0;
  std::size_t next_sequence = 0;
  std::vector<Completion> batch;

  const auto drain_done_rings = [&] {
    for (auto& wk : workers_) {
      wk->done.pop_batch(batch, wk->done.capacity());
    }
  };

  const auto dispatch_decide = [&](std::size_t w, DecideJob job) {
    Worker& wk = *workers_[w];
    while (!wk.decide.try_push(std::move(job))) {
      // The target worker may itself be blocked pushing completions:
      // keep draining done rings (into `batch`, handled next pass) so
      // the cycle always makes progress.
      wk.bell.ring();
      drain_done_rings();
      std::this_thread::yield();
      if (failed_.load(std::memory_order_acquire) ||
          closing_.load(std::memory_order_acquire)) {
        return;
      }
    }
    wk.bell.ring();
  };

  try {
    for (;;) {
      if (batch.empty()) {
        seq_bell_.wait(
            [&] {
              if (closing_.load(std::memory_order_acquire) ||
                  failed_.load(std::memory_order_acquire)) {
                return true;
              }
              for (const auto& wk : workers_) {
                if (!wk->done.empty()) return true;
              }
              return false;
            },
            resolved_spin_, &stats_.spin_polls, &stats_.parks);
        if (closing_.load(std::memory_order_acquire) ||
            failed_.load(std::memory_order_acquire)) {
          return;
        }
      }

      drain_done_rings();
      for (Completion& c : batch) {
        if (c.kind == Completion::Kind::kApDone) {
          RoundAgg& agg = collecting[c.round];
          if (agg.per_ap.empty()) agg.per_ap.resize(n_aps);
          agg.per_ap[c.ap] = std::move(c.packets);
          agg.candidates += c.candidates;
          agg.retries += c.retries;
          agg.skips += c.skips;
          agg.drain_tag = std::max(agg.drain_tag, c.drain_tag);
          agg.had_chunk = agg.had_chunk || c.had_chunk;
          ++agg.aps_done;
        } else {
          for (OpenRound& r : open) {
            if (r.id == c.round) {
              ++r.done;
              break;
            }
          }
          ready.emplace(c.sequence, std::move(c));
        }
      }
      batch.clear();

      // ---- Group scan-complete rounds, strictly in round order, and
      // route each fused frame to the worker owning its MAC shard.
      for (;;) {
        auto it = collecting.find(next_round_to_group);
        if (it == collecting.end() || it->second.aps_done < n_aps) break;
        RoundAgg agg = std::move(it->second);
        collecting.erase(it);

        const std::size_t inflight =
            inflight_frames_.fetch_add(agg.candidates,
                                       std::memory_order_acq_rel) +
            agg.candidates;
        atomic_max(stats_.max_inflight_frames, inflight);
        const std::size_t admitted =
            admitted_rounds_.fetch_add(1, std::memory_order_acq_rel) + 1;
        atomic_max(stats_.max_admitted_rounds, admitted);
        stats_.stale_retries.fetch_add(agg.retries,
                                       std::memory_order_relaxed);
        stats_.stale_skips.fetch_add(agg.skips, std::memory_order_relaxed);

        std::vector<FrameGroup> groups = group_frame_observations(
            std::move(agg.per_ap), positions_,
            config_.engine.group_slack_samples);

        OpenRound r;
        r.id = next_round_to_group;
        r.candidates = agg.candidates;
        r.first_sequence = next_sequence;
        r.expected = groups.size();
        r.drain_tag = agg.drain_tag;
        r.had_chunk = agg.had_chunk;
        open.push_back(r);

        for (FrameGroup& g : groups) {
          const std::size_t seq = next_sequence++;
          const ApObservation& best =
              Coordinator::best_observation(g.observations);
          const std::size_t w =
              best.packet.frame
                  ? spoof_.shard_of(best.packet.frame->addr2) % n_workers
                  : seq % n_workers;
          DecideJob job;
          job.round = next_round_to_group;
          job.sequence = seq;
          job.absolute_start = g.absolute_start;
          job.observations = std::move(g.observations);
          dispatch_decide(w, std::move(job));
        }

        rounds_grouped_.fetch_add(1, std::memory_order_release);
        front_bell_.ring();  // budget gate inputs changed
        ++next_round_to_group;
      }

      // ---- Emit finished decisions, strictly in sequence order.
      while (!ready.empty() && ready.begin()->first == next_emit) {
        Completion& c = ready.begin()->second;
        EngineDecision d;
        d.sequence = c.sequence;
        d.absolute_start = c.absolute_start;
        d.decision = std::move(c.decision);
        if (CaptureWriter* capture = config_.engine.capture;
            capture != nullptr && !capture->closed()) {
          if (config_.engine.capture_site) {
            capture->record_site_decision(*config_.engine.capture_site,
                                          d.sequence, d.absolute_start,
                                          d.decision);
          } else {
            capture->record_decision(d.sequence, d.absolute_start, d.decision);
          }
        }
        sink_(d);
        stats_.decisions_emitted.fetch_add(1, std::memory_order_release);
        ready.erase(ready.begin());
        ++next_emit;
      }

      // ---- Retire rounds from the front, in round order, once all
      // their decisions are out: release budget, signal drains. In-order
      // retirement guarantees a drain ticket only completes after every
      // earlier round's decisions were emitted.
      while (!open.empty() && open.front().done == open.front().expected &&
             next_emit >= open.front().first_sequence + open.front().expected) {
        const OpenRound r = open.front();
        open.pop_front();
        inflight_frames_.fetch_sub(r.candidates, std::memory_order_acq_rel);
        admitted_rounds_.fetch_sub(1, std::memory_order_acq_rel);
        stats_.rounds_completed.fetch_add(1, std::memory_order_release);
        if (r.had_chunk) {
          stats_.rounds_retired.fetch_add(1, std::memory_order_release);
        }
        if (r.drain_tag != 0) {
          // Single writer: plain max-store suffices.
          const std::uint64_t cur =
              drains_completed_.load(std::memory_order_relaxed);
          drains_completed_.store(std::max(cur, r.drain_tag),
                                  std::memory_order_release);
        }
        rounds_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        front_bell_.ring();
        done_bell_.ring();
      }
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

}  // namespace sa
