#include "sa/engine/session.hpp"

#include <algorithm>
#include <future>
#include <type_traits>
#include <utility>

#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

namespace sa {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// get() every future, then rethrow the first error. Queued tasks
/// capture pointers into the round record, so an early rethrow must not
/// leave later tasks pending.
template <typename T, typename Consume>
void join_all(std::vector<std::future<T>>& futures, Consume&& consume) {
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      if constexpr (std::is_void_v<T>) {
        futures[i].get();
      } else {
        consume(i, futures[i].get());
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  futures.clear();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

EngineSession::EngineSession(SessionConfig config,
                             std::vector<AccessPoint*> aps, DecisionSink sink)
    : config_(std::move(config)),
      aps_(std::move(aps)),
      pool_(resolve_threads(config_.engine.num_threads),
            config_.engine.queue_capacity),
      spoof_(config_.engine.coordinator.tracker, config_.engine.num_shards,
             config_.engine.coordinator.max_tracked_macs),
      coordinator_(config_.engine.coordinator),
      sink_(std::move(sink)) {
  SA_EXPECTS(!aps_.empty());
  SA_EXPECTS(sink_ != nullptr);
  SA_EXPECTS(config_.max_inflight_rounds >= 1);
  SA_EXPECTS(config_.max_pending_chunks >= 1);
  streams_.reserve(aps_.size());
  for (AccessPoint* ap : aps_) {
    SA_EXPECTS(ap != nullptr);
    positions_.push_back(ap->config().position);
    streams_.push_back(
        std::make_unique<StreamingReceiver>(*ap, config_.engine.streaming));
    stream_mu_.push_back(std::make_unique<std::mutex>());
  }
  queues_.resize(aps_.size());
  front_ = std::thread([this] { frontend_loop(); });
  back_ = std::thread([this] { backend_loop(); });
}

EngineSession::~EngineSession() {
  try {
    close();
  } catch (const std::exception& e) {
    log_error() << "EngineSession close failed in destructor: " << e.what();
  } catch (...) {
    log_error() << "EngineSession close failed in destructor";
  }
}

void EngineSession::fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) {
      failed_ = true;
      error_ = std::move(error);
    }
  }
  submit_cv_.notify_all();
  front_cv_.notify_all();
  back_cv_.notify_all();
  done_cv_.notify_all();
}

void EngineSession::throw_if_failed_locked() {
  if (failed_) std::rethrow_exception(error_);
}

bool EngineSession::round_formable_locked() const {
  for (const auto& q : queues_) {
    if (q.empty()) return false;
  }
  return true;
}

void EngineSession::submit(std::size_t ap_index, CMat chunk) {
  SA_EXPECTS(ap_index < aps_.size());
  SA_EXPECTS(chunk.rows() == aps_[ap_index]->config().geometry.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    submit_cv_.wait(lock, [&] {
      return failed_ || closing_ ||
             queues_[ap_index].size() < config_.max_pending_chunks;
    });
    throw_if_failed_locked();
    if (closing_) throw StateError("EngineSession::submit after close()");
    queues_[ap_index].push_back(std::move(chunk));
    ++stats_.chunks_submitted;
  }
  front_cv_.notify_one();
}

void EngineSession::submit_round(std::vector<CMat> chunks) {
  SA_EXPECTS(chunks.size() == aps_.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    submit(i, std::move(chunks[i]));
  }
}

void EngineSession::drain() {
  std::uint64_t ticket = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    throw_if_failed_locked();
    if (closing_) throw StateError("EngineSession::drain after close()");
    ticket = ++drains_requested_;
  }
  front_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [&] { return failed_ || drains_completed_ >= ticket; });
  throw_if_failed_locked();
}

void EngineSession::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return failed_ || (!round_formable_locked() && rounds_in_flight_ == 0);
  });
  throw_if_failed_locked();
}

void EngineSession::close() {
  // Serializes concurrent close() calls: the loser waits here and then
  // sees closed_, instead of racing the winner into a double join.
  std::lock_guard<std::mutex> close_lock(close_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
  }
  std::exception_ptr drain_error;
  try {
    drain();
  } catch (...) {
    drain_error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    closing_ = true;
  }
  submit_cv_.notify_all();
  front_cv_.notify_all();
  back_cv_.notify_all();
  done_cv_.notify_all();
  if (front_.joinable()) front_.join();
  if (back_.joinable()) back_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  if (drain_error) std::rethrow_exception(drain_error);
}

SessionStats EngineSession::session_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats s = stats_;
  s.max_overlapped_rounds = pool_.max_epochs_in_flight();
  return s;
}

void EngineSession::frontend_loop() {
  const std::size_t n_aps = aps_.size();
  try {
    for (;;) {
      // ---- Decide what the next round is: a complete round off the
      // chunk queues; during a drain, a padded round for ragged
      // leftovers; then the drain's final flush pass.
      std::vector<std::optional<CMat>> chunks(n_aps);
      bool final_pass = false;
      std::uint64_t drain_tag = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        front_cv_.wait(lock, [&] {
          if (failed_ || closing_) return true;
          if (rounds_in_flight_ >= config_.max_inflight_rounds) return false;
          return round_formable_locked() ||
                 drains_issued_ < drains_requested_;
        });
        if (failed_ || closing_) return;
        const bool complete = round_formable_locked();
        bool any_chunk = false;
        if (complete || drains_issued_ < drains_requested_) {
          for (std::size_t i = 0; i < n_aps; ++i) {
            if (!queues_[i].empty()) {
              chunks[i] = std::move(queues_[i].front());
              queues_[i].pop_front();
              any_chunk = true;
            }
          }
        }
        if (!any_chunk) {
          // Queues are empty and a drain is pending: this round is its
          // final flush pass.
          final_pass = true;
          drain_tag = ++drains_issued_;
        }
        ++rounds_in_flight_;
        submit_cv_.notify_all();
      }

      auto round = std::make_unique<Round>();
      round->id = ++next_round_id_;
      round->final_pass = final_pass;
      round->drain_tag = drain_tag;
      round->per_ap.resize(n_aps);

      // ---- Scan every AP, fanned across the pool. Receiver calls are
      // serialized per stream; the back-end's commit for the previous
      // round may land before or after this scan (commit-behind), the
      // emitted packet stream is the same either way.
      {
        std::vector<std::future<StreamingReceiver::Scan>> futures;
        futures.reserve(n_aps);
        // Queued scan tasks reference the stack-local `chunks`: if a
        // later submission fails, the ones already queued must finish
        // before this frame may unwind.
        try {
          for (std::size_t i = 0; i < n_aps; ++i) {
            futures.push_back(pool_.async_in(round->id, [this, i, &chunks] {
              std::lock_guard<std::mutex> guard(*stream_mu_[i]);
              return streams_[i]->scan(chunks[i] ? &*chunks[i] : nullptr);
            }));
          }
        } catch (...) {
          for (auto& f : futures) {
            if (f.valid()) f.wait();
          }
          throw;
        }
        join_all(futures, [&](std::size_t i, StreamingReceiver::Scan s) {
          round->per_ap[i].scan = std::move(s);
        });
      }

      // ---- Admit the round's candidates against the in-flight frame
      // budget (a round bigger than the whole budget waits for an empty
      // pipeline and runs alone).
      std::size_t candidates = 0;
      for (const auto& ar : round->per_ap) {
        candidates += ar.scan.candidates.size();
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        front_cv_.wait(lock, [&] {
          return failed_ || config_.max_inflight_frames == 0 ||
                 inflight_frames_ == 0 ||
                 inflight_frames_ + candidates <= config_.max_inflight_frames;
        });
        if (failed_) return;
        round->budget = candidates;
        inflight_frames_ += candidates;
        ++admitted_rounds_;
        stats_.max_inflight_frames =
            std::max(stats_.max_inflight_frames, inflight_frames_);
        stats_.max_admitted_rounds =
            std::max(stats_.max_admitted_rounds, admitted_rounds_);
      }

      // ---- Schedule the fresh candidates' heavy work now: these frames
      // arrived in this round's chunk, so no pending commit can already
      // have emitted them. Candidates that predate the chunk (deferred
      // retries, or duplicates a pending commit is about to cover) are
      // left for the back-end, which resolves them against the
      // then-current watermark. Narrowband APs run the whole demodulate
      // as one task; wideband APs split decode from the per-band
      // estimates so a single frame can keep several workers busy.
      // Scheduled tasks hold pointers into the round record: if a
      // submission fails partway, every already-scheduled task must
      // finish before the record may unwind.
      try {
        schedule_fresh_work(*round);
      } catch (...) {
        for (auto& ar : round->per_ap) {
          for (auto& f : ar.demod_futures) {
            if (f.valid()) f.wait();
          }
          for (auto& f : ar.prep_futures) {
            if (f.valid()) f.wait();
          }
        }
        throw;
      }

      {
        std::lock_guard<std::mutex> lock(mu_);
        round_queue_.push_back(std::move(round));
      }
      back_cv_.notify_one();
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

void EngineSession::schedule_fresh_work(Round& round) {
  const std::size_t n_aps = aps_.size();
  for (std::size_t i = 0; i < n_aps; ++i) {
    ApRound& ar = round.per_ap[i];
    const std::size_t n_cands = ar.scan.candidates.size();
    ar.processed.resize(n_cands);
    const bool wideband = aps_[i]->config().subbands > 1;
    if (wideband) {
      ar.preps.resize(n_cands);
      ar.band_results.resize(n_cands);
    }
    for (std::size_t j = 0; j < n_cands; ++j) {
      const auto& cand = ar.scan.candidates[j];
      if (cand.absolute_start < ar.scan.prev_seen) {
        ar.stale.push_back(j);
        continue;
      }
      if (wideband) {
        ar.prep_futures.push_back(pool_.async_in(
            round.id, [ap = aps_[i], conditioned = ar.scan.conditioned,
                       det = cand.detection] {
              // One scratch per worker thread, reused across every frame
              // it prepares — results are bit-identical to the
              // allocating path (tested), only the allocations go away.
              thread_local AccessPoint::FrameScratch scratch;
              return ap->prepare(*conditioned, det, &scratch);
            }));
        ar.prep_idx.push_back(j);
      } else {
        ar.demod_futures.push_back(pool_.async_in(
            round.id, [ap = aps_[i], conditioned = ar.scan.conditioned,
                       det = cand.detection] {
              thread_local AccessPoint::FrameScratch scratch;
              return ap->demodulate(*conditioned, det, &scratch);
            }));
        ar.demod_idx.push_back(j);
      }
    }
  }
}

void EngineSession::backend_loop() {
  for (;;) {
    std::unique_ptr<Round> round;
    {
      std::unique_lock<std::mutex> lock(mu_);
      back_cv_.wait(lock, [&] {
        return failed_ || closing_ || !round_queue_.empty();
      });
      if (!round_queue_.empty()) {
        round = std::move(round_queue_.front());
        round_queue_.pop_front();
      } else if (failed_ || closing_) {
        return;
      }
    }
    if (!round) continue;
    try {
      process_round(*round);
    } catch (...) {
      fail(std::current_exception());
      return;
    }
  }
}

void EngineSession::process_round(Round& round) {
  const std::size_t n_aps = aps_.size();
  std::size_t stale_retries = 0;
  std::size_t stale_skips = 0;

  // ---- Join the front-end's fresh decode/prep work, in fixed order.
  // Every AP's futures are joined even if an earlier one threw: a
  // pending task holds pointers into this round record, so nothing may
  // unwind past it.
  {
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n_aps; ++i) {
      ApRound& ar = round.per_ap[i];
      try {
        join_all(ar.demod_futures,
                 [&](std::size_t k, std::optional<ReceivedPacket> p) {
                   ar.processed[ar.demod_idx[k]] = std::move(p);
                 });
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
      try {
        join_all(ar.prep_futures,
                 [&](std::size_t k, std::optional<AccessPoint::FramePrep> p) {
                   ar.preps[ar.prep_idx[k]] = std::move(p);
                 });
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  // ---- Wideband: fan the per-(frame, subband) estimates flat across
  // the pool, then assemble — the intra-frame parallelism of the batch
  // engine, preserved inside the pipelined round.
  {
    std::vector<std::future<MusicResult>> futures;
    struct Slot {
      std::size_t ap, cand, band;
    };
    std::vector<Slot> where;
    for (std::size_t i = 0; i < n_aps; ++i) {
      ApRound& ar = round.per_ap[i];
      for (std::size_t j = 0; j < ar.preps.size(); ++j) {
        if (!ar.preps[j]) continue;
        ar.band_results[j].resize(ar.preps[j]->bands.size());
        for (std::size_t b = 0; b < ar.preps[j]->bands.size(); ++b) {
          futures.push_back(
              pool_.async_in(round.id, [ap = aps_[i], prep = &*ar.preps[j], b] {
                return ap->estimate_band(*prep, b);
              }));
          where.push_back({i, j, b});
        }
      }
    }
    join_all(futures, [&](std::size_t k, MusicResult r) {
      round.per_ap[where[k].ap].band_results[where[k].cand][where[k].band] =
          std::move(r);
    });
  }
  {
    std::vector<std::future<ReceivedPacket>> futures;
    std::vector<std::pair<std::size_t, std::size_t>> where;  // (ap, cand)
    for (std::size_t i = 0; i < n_aps; ++i) {
      ApRound& ar = round.per_ap[i];
      for (std::size_t j = 0; j < ar.preps.size(); ++j) {
        if (!ar.preps[j]) continue;
        futures.push_back(pool_.async_in(
            round.id,
            [ap = aps_[i], prep = &ar.preps[j], res = &ar.band_results[j]] {
              return ap->assemble(std::move(**prep), std::move(*res));
            }));
        where.emplace_back(i, j);
      }
    }
    join_all(futures, [&](std::size_t k, ReceivedPacket p) {
      round.per_ap[where[k].first].processed[where[k].second] = std::move(p);
    });
  }

  // ---- Resolve stale candidates against the now-final watermark of the
  // preceding commit: duplicates an earlier round already emitted stay
  // unprocessed (commit drops them), genuine deferred retries are
  // decoded here. Retries are rare, so they run inline.
  for (std::size_t i = 0; i < n_aps; ++i) {
    ApRound& ar = round.per_ap[i];
    if (ar.stale.empty()) continue;
    std::size_t watermark = 0;
    {
      std::lock_guard<std::mutex> guard(*stream_mu_[i]);
      watermark = streams_[i]->emit_watermark();
    }
    for (std::size_t j : ar.stale) {
      const auto& cand = ar.scan.candidates[j];
      if (cand.absolute_start < watermark) {
        ++stale_skips;
        continue;
      }
      thread_local AccessPoint::FrameScratch scratch;  // back-end thread's
      ar.processed[j] =
          aps_[i]->demodulate(*ar.scan.conditioned, cand.detection, &scratch);
      ++stale_retries;
    }
  }

  // ---- Commit per stream, in AP order.
  std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    ApRound& ar = round.per_ap[i];
    std::lock_guard<std::mutex> guard(*stream_mu_[i]);
    per_ap[i] = streams_[i]->commit(ar.scan, std::move(ar.processed),
                                    round.final_pass);
  }

  // ---- Fuse the APs' views of each transmission.
  std::vector<FrameGroup> groups = group_frame_observations(
      std::move(per_ap), positions_, config_.engine.group_slack_samples);

  // ---- Spoof observations: reserve a per-frame ticket in global frame
  // order, then fulfil from the pool — a MAC's tracker state advances
  // frame by frame (every MAC lives on one shard) while unrelated
  // shards run concurrently, with no per-round barrier. Skipped when the
  // chain has no SpoofPolicy (trackers must not train on frames no
  // policy will judge).
  std::vector<std::future<SpoofObservation>> spoof_futures(groups.size());
  if (coordinator_.wants_spoof()) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const ApObservation& best =
          Coordinator::best_observation(groups[g].observations);
      if (!best.packet.frame) continue;
      const SpoofTicket ticket = spoof_.reserve(best.packet.frame->addr2);
      auto promise = std::make_shared<std::promise<SpoofObservation>>();
      spoof_futures[g] = promise->get_future();
      pool_.submit(
          [this, ticket, mac = &best.packet.frame->addr2,
           sig = &best.packet.subband, promise] {
            try {
              spoof_.fulfil(ticket, *mac, *sig,
                            [promise](SpoofObservation obs,
                                      std::exception_ptr error) {
                              if (error) {
                                promise->set_exception(std::move(error));
                              } else {
                                promise->set_value(obs);
                              }
                            });
            } catch (...) {
              promise->set_exception(std::current_exception());
            }
          },
          round.id);
    }
  }

  // ---- Re-sequence into the one ordered decision stream. On error,
  // outstanding spoof tasks still reference `groups`: wait them out
  // before unwinding.
  std::exception_ptr decide_error;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    try {
      std::optional<SpoofObservation> spoof;
      if (spoof_futures[g].valid()) spoof = spoof_futures[g].get();
      if (!decide_error) {
        EngineDecision decision{
            sequence_, groups[g].absolute_start,
            coordinator_.process_prejudged(groups[g].observations, spoof)};
        ++sequence_;
        sink_(decision);
      }
    } catch (...) {
      if (!decide_error) decide_error = std::current_exception();
    }
  }
  if (decide_error) std::rethrow_exception(decide_error);

  // ---- Bookkeeping: release the budget, record progress, wake the
  // front-end and any drain()/wait_idle() callers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_frames_ -= round.budget;
    --admitted_rounds_;
    --rounds_in_flight_;
    ++stats_.rounds_completed;
    stats_.decisions_emitted += groups.size();
    stats_.stale_retries += stale_retries;
    stats_.stale_skips += stale_skips;
    if (round.drain_tag != 0) {
      drains_completed_ = std::max(drains_completed_, round.drain_tag);
    }
  }
  front_cv_.notify_all();
  done_cv_.notify_all();
}

}  // namespace sa
