#include "sa/engine/deployment.hpp"

#include <algorithm>
#include <utility>

#include "sa/common/error.hpp"
#include "sa/engine/session.hpp"

namespace sa {

std::vector<FrameGroup> group_frame_observations(
    std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap_packets,
    const std::vector<Vec2>& ap_positions, std::size_t slack_samples) {
  SA_EXPECTS(per_ap_packets.size() == ap_positions.size());

  struct Entry {
    std::size_t start;
    std::size_t ap_index;
    ReceivedPacket packet;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < per_ap_packets.size(); ++i) {
    for (auto& sp : per_ap_packets[i]) {
      entries.push_back({sp.absolute_start, i, std::move(sp.packet)});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.start != b.start ? a.start < b.start : a.ap_index < b.ap_index;
  });

  std::vector<FrameGroup> groups;
  for (auto& e : entries) {
    if (groups.empty() ||
        e.start > groups.back().absolute_start + slack_samples) {
      groups.push_back({e.start, {}});
    }
    groups.back().observations.push_back(
        {ap_positions[e.ap_index], std::move(e.packet)});
  }
  return groups;
}

DeploymentEngine::DeploymentEngine(EngineConfig config,
                                   std::vector<AccessPoint*> aps)
    : config_(std::move(config)) {
  SessionConfig scfg;
  scfg.engine = config_;
  // Lock-step wrapper: every ingest waits the round out, so scan-ahead
  // never happens; the bounds only need to admit one round at a time.
  scfg.max_inflight_rounds = 1;
  scfg.max_inflight_frames = 0;  // unbounded
  session_ = std::make_unique<EngineSession>(
      scfg, std::move(aps),
      [this](const EngineDecision& d) { collected_.push_back(d); });
}

DeploymentEngine::~DeploymentEngine() = default;

std::vector<EngineDecision> DeploymentEngine::ingest(
    const std::vector<CMat>& chunks) {
  return ingest(std::vector<CMat>(chunks.begin(), chunks.end()));
}

std::vector<EngineDecision> DeploymentEngine::ingest(
    std::vector<CMat>&& chunks) {
  SA_EXPECTS(chunks.size() == session_->num_aps());
  collected_.clear();
  session_->submit_round(std::move(chunks));
  session_->wait_idle();
  return std::move(collected_);
}

std::vector<EngineDecision> DeploymentEngine::flush() {
  collected_.clear();
  session_->drain();
  return std::move(collected_);
}

std::size_t DeploymentEngine::num_aps() const { return session_->num_aps(); }

std::size_t DeploymentEngine::num_threads() const {
  return session_->num_threads();
}

Coordinator::Stats DeploymentEngine::stats() const { return session_->stats(); }

const PolicyChain& DeploymentEngine::chain() const { return session_->chain(); }

const ShardedSpoofDetector& DeploymentEngine::spoof_detector() const {
  return session_->spoof_detector();
}

}  // namespace sa
