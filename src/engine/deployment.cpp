#include "sa/engine/deployment.hpp"

#include <algorithm>
#include <future>
#include <type_traits>
#include <utility>

#include "sa/common/error.hpp"

namespace sa {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// get() every future, then rethrow the first error. Queued tasks
/// capture pointers into round()'s frame and the caller's chunks, so an
/// early rethrow must not leave later tasks pending.
template <typename T, typename Consume>
void join_all(std::vector<std::future<T>>& futures, Consume&& consume) {
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      if constexpr (std::is_void_v<T>) {
        futures[i].get();
      } else {
        consume(i, futures[i].get());
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::vector<FrameGroup> group_frame_observations(
    std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap_packets,
    const std::vector<Vec2>& ap_positions, std::size_t slack_samples) {
  SA_EXPECTS(per_ap_packets.size() == ap_positions.size());

  struct Entry {
    std::size_t start;
    std::size_t ap_index;
    ReceivedPacket packet;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < per_ap_packets.size(); ++i) {
    for (auto& sp : per_ap_packets[i]) {
      entries.push_back({sp.absolute_start, i, std::move(sp.packet)});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.start != b.start ? a.start < b.start : a.ap_index < b.ap_index;
  });

  std::vector<FrameGroup> groups;
  for (auto& e : entries) {
    if (groups.empty() ||
        e.start > groups.back().absolute_start + slack_samples) {
      groups.push_back({e.start, {}});
    }
    groups.back().observations.push_back(
        {ap_positions[e.ap_index], std::move(e.packet)});
  }
  return groups;
}

DeploymentEngine::DeploymentEngine(EngineConfig config,
                                   std::vector<AccessPoint*> aps)
    : config_(std::move(config)),
      aps_(std::move(aps)),
      pool_(resolve_threads(config_.num_threads), config_.queue_capacity),
      spoof_(config_.coordinator.tracker, config_.num_shards,
             config_.coordinator.max_tracked_macs),
      coordinator_(config_.coordinator) {
  SA_EXPECTS(!aps_.empty());
  streams_.reserve(aps_.size());
  for (AccessPoint* ap : aps_) {
    SA_EXPECTS(ap != nullptr);
    streams_.push_back(
        std::make_unique<StreamingReceiver>(*ap, config_.streaming));
  }
}

std::vector<EngineDecision> DeploymentEngine::ingest(
    const std::vector<CMat>& chunks) {
  SA_EXPECTS(chunks.size() == aps_.size());
  return round(&chunks);
}

std::vector<EngineDecision> DeploymentEngine::flush() { return round(nullptr); }

std::vector<EngineDecision> DeploymentEngine::round(
    const std::vector<CMat>* chunks) {
  const bool final_pass = chunks == nullptr;
  const std::size_t n_aps = aps_.size();

  // ---- Phase 1: append + condition + detect, parallel across APs (each
  // stream is touched by exactly one task).
  std::vector<StreamingReceiver::Scan> scans(n_aps);
  {
    std::vector<std::future<StreamingReceiver::Scan>> futures;
    futures.reserve(n_aps);
    for (std::size_t i = 0; i < n_aps; ++i) {
      futures.push_back(pool_.async([this, i, chunks] {
        return streams_[i]->scan(chunks ? &(*chunks)[i] : nullptr);
      }));
    }
    join_all(futures, [&](std::size_t i, StreamingReceiver::Scan s) {
      scans[i] = std::move(s);
    });
  }

  // ---- Phase 2: the hot path. Narrowband APs (subbands == 1) gain
  // nothing from a per-band fan-out but would pay its extra join
  // barriers, so each of their candidates runs the whole demodulate as
  // one task — exactly the pre-wideband schedule. Wideband APs split
  // into three fan-outs: 2a decodes and builds the per-subband
  // covariance contexts; 2b fans the per-(frame, subband) AoA estimates
  // flat across the pool — the intra-frame parallelism that keeps every
  // worker busy even when one AP hears one frame; 2c assembles the
  // packets (signature fusion, bearing selection). Work is scheduled
  // and joined in fixed (ap, candidate, band) order, so the result is
  // thread-count invariant.
  using FramePrep = AccessPoint::FramePrep;
  std::vector<std::vector<std::optional<ReceivedPacket>>> processed(n_aps);
  std::vector<std::vector<std::optional<FramePrep>>> preps(n_aps);
  {
    std::vector<std::future<std::optional<ReceivedPacket>>> demod_futures;
    std::vector<std::pair<std::size_t, std::size_t>> demod_where;
    std::vector<std::future<std::optional<FramePrep>>> prep_futures;
    std::vector<std::pair<std::size_t, std::size_t>> prep_where;
    for (std::size_t i = 0; i < n_aps; ++i) {
      processed[i].resize(scans[i].candidates.size());
      preps[i].resize(scans[i].candidates.size());
      const bool wideband = aps_[i]->config().subbands > 1;
      for (std::size_t j = 0; j < scans[i].candidates.size(); ++j) {
        if (wideband) {
          prep_futures.push_back(pool_.async(
              [ap = aps_[i], conditioned = scans[i].conditioned,
               det = scans[i].candidates[j].detection] {
                return ap->prepare(*conditioned, det);
              }));
          prep_where.emplace_back(i, j);
        } else {
          demod_futures.push_back(pool_.async(
              [ap = aps_[i], conditioned = scans[i].conditioned,
               det = scans[i].candidates[j].detection] {
                return ap->demodulate(*conditioned, det);
              }));
          demod_where.emplace_back(i, j);
        }
      }
    }
    join_all(demod_futures, [&](std::size_t k, std::optional<ReceivedPacket> p) {
      processed[demod_where[k].first][demod_where[k].second] = std::move(p);
    });
    join_all(prep_futures, [&](std::size_t k, std::optional<FramePrep> p) {
      preps[prep_where[k].first][prep_where[k].second] = std::move(p);
    });
  }

  std::vector<std::vector<std::vector<MusicResult>>> band_results(n_aps);
  {
    std::vector<std::future<MusicResult>> futures;
    struct Slot {
      std::size_t ap, cand, band;
    };
    std::vector<Slot> where;
    for (std::size_t i = 0; i < n_aps; ++i) {
      band_results[i].resize(preps[i].size());
      for (std::size_t j = 0; j < preps[i].size(); ++j) {
        if (!preps[i][j]) continue;
        band_results[i][j].resize(preps[i][j]->bands.size());
        for (std::size_t b = 0; b < preps[i][j]->bands.size(); ++b) {
          futures.push_back(pool_.async([ap = aps_[i], prep = &*preps[i][j],
                                         b] { return ap->estimate_band(*prep, b); }));
          where.push_back({i, j, b});
        }
      }
    }
    join_all(futures, [&](std::size_t k, MusicResult r) {
      band_results[where[k].ap][where[k].cand][where[k].band] = std::move(r);
    });
  }

  {
    std::vector<std::future<ReceivedPacket>> futures;
    std::vector<std::pair<std::size_t, std::size_t>> where;  // (ap, cand)
    for (std::size_t i = 0; i < n_aps; ++i) {
      for (std::size_t j = 0; j < preps[i].size(); ++j) {
        if (!preps[i][j]) continue;
        futures.push_back(pool_.async(
            [ap = aps_[i], prep = &preps[i][j], res = &band_results[i][j]] {
              return ap->assemble(std::move(**prep), std::move(*res));
            }));
        where.emplace_back(i, j);
      }
    }
    join_all(futures, [&](std::size_t k, ReceivedPacket p) {
      processed[where[k].first][where[k].second] = std::move(p);
    });
  }

  // ---- Phase 3: per-stream emit/defer bookkeeping, in AP order.
  std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    per_ap[i] =
        streams_[i]->commit(scans[i], std::move(processed[i]), final_pass);
  }

  // ---- Phase 4: fuse the APs' views of each transmission.
  std::vector<Vec2> positions;
  positions.reserve(n_aps);
  for (const AccessPoint* ap : aps_) positions.push_back(ap->config().position);
  std::vector<FrameGroup> groups = group_frame_observations(
      std::move(per_ap), positions, config_.group_slack_samples);

  // ---- Phase 5: spoof observations, parallel across MAC shards. Every
  // frame of a given MAC lands on the same shard and each shard's frames
  // are judged in global order, so tracker state evolves exactly as it
  // would single-threaded. Skipped entirely when the policy chain has no
  // SpoofPolicy (trackers must not train on frames no policy will judge).
  std::vector<std::optional<SpoofObservation>> spoofs(groups.size());
  if (coordinator_.wants_spoof()) {
    std::vector<const ApObservation*> best(groups.size());
    std::vector<std::vector<std::size_t>> buckets(spoof_.num_shards());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      best[g] = &Coordinator::best_observation(groups[g].observations);
      if (best[g]->packet.frame) {
        buckets[spoof_.shard_of(best[g]->packet.frame->addr2)].push_back(g);
      }
    }
    std::vector<std::future<void>> futures;
    for (const auto& bucket : buckets) {
      if (bucket.empty()) continue;
      futures.push_back(pool_.async([this, &bucket, &best, &spoofs] {
        for (std::size_t g : bucket) {
          spoofs[g] = spoof_.observe(best[g]->packet.frame->addr2,
                                     best[g]->packet.subband);
        }
      }));
    }
    join_all(futures, [](std::size_t, int) {});
  }

  // ---- Phase 6: re-sequence into one ordered decision stream.
  std::vector<EngineDecision> out;
  out.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    out.push_back({sequence_++, groups[g].absolute_start,
                   coordinator_.process_prejudged(groups[g].observations,
                                                  spoofs[g])});
  }
  return out;
}

}  // namespace sa
