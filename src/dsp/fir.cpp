#include "sa/dsp/fir.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"

namespace sa {

std::vector<double> make_window(Window w, std::size_t n) {
  SA_EXPECTS(n > 0);
  std::vector<double> out(n, 1.0);
  if (n == 1) return out;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    switch (w) {
      case Window::kRect:
        out[i] = 1.0;
        break;
      case Window::kHann:
        out[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);
        break;
      case Window::kHamming:
        out[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);
        break;
      case Window::kBlackman:
        out[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) + 0.08 * std::cos(2.0 * kTwoPi * t);
        break;
    }
  }
  return out;
}

std::vector<double> design_lowpass(double normalized_cutoff, std::size_t taps,
                                   Window w) {
  SA_EXPECTS(normalized_cutoff > 0.0 && normalized_cutoff < 0.5);
  SA_EXPECTS(taps >= 3 && taps % 2 == 1);
  const auto mid = static_cast<double>(taps - 1) / 2.0;
  const std::vector<double> win = make_window(w, taps);
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double x = kTwoPi * normalized_cutoff * t;
    const double sinc = (std::abs(t) < 1e-12)
                            ? 2.0 * normalized_cutoff
                            : std::sin(x) / (kPi * t);
    h[i] = sinc * win[i];
    sum += h[i];
  }
  // Normalize to unit DC gain.
  SA_ENSURES(std::abs(sum) > 1e-12);
  for (double& v : h) v /= sum;
  return h;
}

CVec fir_filter(const CVec& x, const std::vector<double>& taps) {
  SA_EXPECTS(!taps.empty());
  if (x.empty()) return {};
  CVec out(x.size() + taps.size() - 1, cd{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += x[i] * taps[j];
    }
  }
  return out;
}

CVec fir_filter_same(const CVec& x, const std::vector<double>& taps) {
  CVec full = fir_filter(x, taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  return CVec(full.begin() + static_cast<std::ptrdiff_t>(delay),
              full.begin() + static_cast<std::ptrdiff_t>(delay + x.size()));
}

}  // namespace sa
