#include "sa/dsp/fft.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"

namespace sa {

namespace {

void bit_reverse_permute(CVec& x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  SA_EXPECTS(is_pow2(n));
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cd wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      cd w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = x[i + k];
        const cd v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(CVec& x) { fft_core(x, /*inverse=*/false); }

void ifft_inplace(CVec& x) {
  fft_core(x, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (cd& v : x) v *= inv_n;
}

CVec fft(CVec x) {
  fft_inplace(x);
  return x;
}

CVec ifft(CVec x) {
  ifft_inplace(x);
  return x;
}

CVec fftshift(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

std::vector<double> power_spectrum(const CVec& x) {
  CVec f = fft(x);
  std::vector<double> p(f.size());
  const double inv_n = 1.0 / static_cast<double>(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) p[i] = std::norm(f[i]) * inv_n;
  return p;
}

}  // namespace sa
