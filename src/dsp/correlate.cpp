#include "sa/dsp/correlate.hpp"

#include <cmath>

#include "sa/common/error.hpp"

namespace sa {

CVec sliding_correlation(const CVec& x, const CVec& ref) {
  SA_EXPECTS(!ref.empty());
  if (x.size() < ref.size()) return {};
  const std::size_t n_out = x.size() - ref.size() + 1;
  CVec out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    cd s{0.0, 0.0};
    for (std::size_t i = 0; i < ref.size(); ++i) {
      s += std::conj(ref[i]) * x[k + i];
    }
    out[k] = s;
  }
  return out;
}

CVec lag_autocorrelation(const CVec& x, std::size_t lag, std::size_t window) {
  SA_EXPECTS(lag > 0 && window > 0);
  if (x.size() < lag + window) return {};
  const std::size_t n_out = x.size() - lag - window + 1;
  CVec out(n_out);
  // Running update: P[k+1] = P[k] - c(k) + c(k+window).
  cd p{0.0, 0.0};
  for (std::size_t i = 0; i < window; ++i) {
    p += std::conj(x[i]) * x[i + lag];
  }
  out[0] = p;
  for (std::size_t k = 1; k < n_out; ++k) {
    p -= std::conj(x[k - 1]) * x[k - 1 + lag];
    p += std::conj(x[k + window - 1]) * x[k + window - 1 + lag];
    out[k] = p;
  }
  return out;
}

std::vector<double> window_energy(const CVec& x, std::size_t offset,
                                  std::size_t window) {
  SA_EXPECTS(window > 0);
  if (x.size() < offset + window) return {};
  const std::size_t n_out = x.size() - offset - window + 1;
  std::vector<double> out(n_out);
  double e = 0.0;
  for (std::size_t i = 0; i < window; ++i) e += std::norm(x[offset + i]);
  out[0] = e;
  for (std::size_t k = 1; k < n_out; ++k) {
    e -= std::norm(x[offset + k - 1]);
    e += std::norm(x[offset + k + window - 1]);
    out[k] = e;
  }
  return out;
}

double correlation_coefficient(const CVec& a, const CVec& b) {
  SA_EXPECTS(a.size() == b.size());
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(inner(a, b)) / (na * nb);
}

}  // namespace sa
