#include "sa/dsp/noise.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

CVec awgn(std::size_t n, double noise_power, Rng& rng) {
  SA_EXPECTS(noise_power >= 0.0);
  CVec out(n);
  for (cd& v : out) v = rng.complex_normal(noise_power);
  return out;
}

double add_awgn_snr(CVec& x, double snr_db, Rng& rng) {
  const double sig_power = mean_power(x);
  if (sig_power <= 0.0) return 0.0;
  const double noise_power = sig_power / from_db(snr_db);
  add_awgn_power(x, noise_power, rng);
  return noise_power;
}

void add_awgn_power(CVec& x, double noise_power, Rng& rng) {
  SA_EXPECTS(noise_power >= 0.0);
  if (noise_power == 0.0) return;
  for (cd& v : x) v += rng.complex_normal(noise_power);
}

void apply_cfo(CVec& x, double cfo_hz, double sample_rate_hz,
               double initial_phase_rad) {
  SA_EXPECTS(sample_rate_hz > 0.0);
  const double step = kTwoPi * cfo_hz / sample_rate_hz;
  // Incremental rotation: one complex multiply per sample, with periodic
  // renormalization to stop amplitude drift on long blocks.
  cd rot{std::cos(initial_phase_rad), std::sin(initial_phase_rad)};
  const cd inc{std::cos(step), std::sin(step)};
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] *= rot;
    rot *= inc;
    if ((i & 0x3FF) == 0x3FF) rot /= std::abs(rot);
  }
}

void apply_phase(CVec& x, double phase_rad) {
  const cd rot{std::cos(phase_rad), std::sin(phase_rad)};
  for (cd& v : x) v *= rot;
}

CVec fractional_delay(const CVec& x, double delay_samples) {
  SA_EXPECTS(delay_samples >= 0.0);
  const auto whole = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(whole);
  CVec out(x.size() + whole + (frac > 0.0 ? 1 : 0), cd{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Linear interpolation between adjacent output positions.
    out[i + whole] += x[i] * (1.0 - frac);
    if (frac > 0.0) out[i + whole + 1] += x[i] * frac;
  }
  return out;
}

}  // namespace sa
