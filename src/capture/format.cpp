#include "sa/capture/format.hpp"

#include <cstring>

#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"

namespace sa {

// ----------------------------------------------------------- primitives

void put_u8(ByteStream& out, std::uint8_t v) { out.push_back(v); }

void put_u32(ByteStream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(ByteStream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(ByteStream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(ByteStream& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (at_ + 1 > size_) return std::nullopt;
  return data_[at_++];
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (at_ + 4 > size_) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[at_ + i]) << (8 * i);
  }
  at_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (at_ + 8 > size_) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[at_ + i]) << (8 * i);
  }
  at_ += 8;
  return v;
}

std::optional<double> ByteReader::f64() {
  const auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> ByteReader::str(std::size_t max_len) {
  const auto len = u32();
  if (!len || *len > max_len || *len > remaining()) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_ + at_), *len);
  at_ += *len;
  return s;
}

bool ByteReader::skip(std::size_t n) {
  if (n > remaining()) return false;
  at_ += n;
  return true;
}

// ------------------------------------------------------------ header

std::optional<std::string> CaptureHeader::meta(std::string_view key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) return v;
  }
  return std::nullopt;
}

ByteStream encode_header(const CaptureHeader& header) {
  ByteStream payload;
  put_u32(payload, header.num_aps);
  put_u64(payload, header.seed);
  put_u32(payload, static_cast<std::uint32_t>(header.metadata.size()));
  for (const auto& [k, v] : header.metadata) {
    put_str(payload, k);
    put_str(payload, v);
  }
  ByteStream out;
  put_u32(out, kSacpMagic);
  put_u32(out, header.version);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<CaptureHeader> decode_header(ByteReader& r) {
  const auto magic = r.u32();
  if (!magic || *magic != kSacpMagic) return std::nullopt;
  const auto version = r.u32();
  if (!version || *version < kSacpVersion || *version > kSacpVersionChaos) {
    return std::nullopt;
  }
  const auto payload_len = r.u32();
  if (!payload_len || *payload_len > r.remaining() ||
      *payload_len > kMaxRecordPayload) {
    return std::nullopt;
  }
  ByteReader p(r.cursor(), *payload_len);
  CaptureHeader h;
  h.version = *version;
  const auto num_aps = p.u32();
  const auto seed = p.u64();
  const auto meta_count = p.u32();
  if (!num_aps || !seed || !meta_count || *meta_count > kMaxMetaEntries) {
    return std::nullopt;
  }
  h.num_aps = *num_aps;
  h.seed = *seed;
  for (std::uint32_t i = 0; i < *meta_count; ++i) {
    auto key = p.str();
    auto value = p.str();
    if (!key || !value) return std::nullopt;
    h.metadata.emplace_back(std::move(*key), std::move(*value));
  }
  if (!p.done()) return std::nullopt;  // trailing garbage in the header
  r.skip(*payload_len);
  return h;
}

// ------------------------------------------------------------- records

void append_record(ByteStream& out, RecordType type,
                   const ByteStream& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, static_cast<std::uint32_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

ByteStream encode_chunk(std::uint32_t ap, std::uint64_t round,
                        std::uint64_t base, const CMat& samples) {
  SA_EXPECTS(samples.rows() <= kMaxChunkRows);
  SA_EXPECTS(samples.cols() <= kMaxChunkCols);
  ByteStream payload;
  payload.reserve(32 + samples.rows() * samples.cols() * 16);
  put_u32(payload, ap);
  put_u64(payload, round);
  put_u64(payload, base);
  put_u32(payload, static_cast<std::uint32_t>(samples.rows()));
  put_u32(payload, static_cast<std::uint32_t>(samples.cols()));
  const cd* raw = samples.raw();
  const std::size_t n = samples.rows() * samples.cols();
  for (std::size_t i = 0; i < n; ++i) {
    put_f64(payload, raw[i].real());
    put_f64(payload, raw[i].imag());
  }
  return payload;
}

std::optional<ChunkRecord> decode_chunk(const ByteStream& payload) {
  ByteReader r(payload);
  ChunkRecord c;
  const auto ap = r.u32();
  const auto round = r.u64();
  const auto base = r.u64();
  const auto rows = r.u32();
  const auto cols = r.u32();
  if (!ap || !round || !base || !rows || !cols) return std::nullopt;
  if (*rows == 0 || *rows > kMaxChunkRows || *cols > kMaxChunkCols) {
    return std::nullopt;
  }
  // The payload length must match the dimensions exactly: a lying length
  // field is a parse error, not a partial read.
  const std::size_t n = static_cast<std::size_t>(*rows) * *cols;
  if (r.remaining() != n * 16) return std::nullopt;
  c.ap = *ap;
  c.round = *round;
  c.base = *base;
  c.samples.resize(*rows, *cols);
  cd* raw = c.samples.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const auto re = r.f64();
    const auto im = r.f64();
    if (!re || !im) return std::nullopt;
    raw[i] = cd(*re, *im);
  }
  return c;
}

ByteStream encode_decision(std::uint64_t sequence,
                           std::uint64_t absolute_start,
                           const FrameDecision& d) {
  ByteStream payload;
  put_u64(payload, sequence);
  put_u64(payload, absolute_start);
  put_u8(payload, d.accepted ? 1 : 0);
  put_u8(payload, static_cast<std::uint8_t>(d.spoof));
  put_u8(payload, d.source.has_value() ? 1 : 0);
  put_u8(payload, d.location.has_value() ? 1 : 0);
  put_f64(payload, d.spoof_score);
  if (d.source) {
    for (std::uint8_t o : d.source->octets()) put_u8(payload, o);
  }
  if (d.location) {
    put_f64(payload, d.location->position.x);
    put_f64(payload, d.location->position.y);
    put_f64(payload, d.location->residual_deg);
    put_u32(payload, static_cast<std::uint32_t>(d.location->aps_used));
  }
  put_str(payload, d.policy);
  put_str(payload, d.detail);
  put_u32(payload, static_cast<std::uint32_t>(d.trace.size()));
  for (const auto& t : d.trace) {
    put_str(payload, t.policy);
    put_u8(payload, t.dropped ? 1 : 0);
    put_str(payload, t.detail);
  }
  return payload;
}

std::optional<DecisionRecord> decode_decision(const ByteStream& payload) {
  ByteReader r(payload);
  DecisionRecord d;
  const auto sequence = r.u64();
  const auto start = r.u64();
  const auto accepted = r.u8();
  const auto verdict = r.u8();
  const auto has_source = r.u8();
  const auto has_location = r.u8();
  const auto score = r.f64();
  if (!sequence || !start || !accepted || !verdict || !has_source ||
      !has_location || !score || *accepted > 1 || *has_source > 1 ||
      *has_location > 1 || *verdict > 2) {
    return std::nullopt;
  }
  d.sequence = *sequence;
  d.absolute_start = *start;
  d.accepted = *accepted != 0;
  d.spoof_verdict = *verdict;
  d.spoof_score = *score;
  if (*has_source != 0) {
    std::array<std::uint8_t, 6> octets{};
    for (auto& o : octets) {
      const auto b = r.u8();
      if (!b) return std::nullopt;
      o = *b;
    }
    d.source = octets;
  }
  if (*has_location != 0) {
    DecisionRecord::Location loc;
    const auto x = r.f64();
    const auto y = r.f64();
    const auto residual = r.f64();
    const auto aps_used = r.u32();
    if (!x || !y || !residual || !aps_used) return std::nullopt;
    loc.x = *x;
    loc.y = *y;
    loc.residual_deg = *residual;
    loc.aps_used = *aps_used;
    d.location = loc;
  }
  auto policy = r.str();
  auto detail = r.str();
  const auto trace_count = r.u32();
  if (!policy || !detail || !trace_count ||
      *trace_count > kMaxTraceEntries) {
    return std::nullopt;
  }
  d.policy = std::move(*policy);
  d.detail = std::move(*detail);
  for (std::uint32_t i = 0; i < *trace_count; ++i) {
    DecisionRecord::TraceEntry t;
    auto tp = r.str();
    const auto dropped = r.u8();
    auto td = r.str();
    if (!tp || !dropped || !td || *dropped > 1) return std::nullopt;
    t.policy = std::move(*tp);
    t.dropped = *dropped != 0;
    t.detail = std::move(*td);
    d.trace.push_back(std::move(t));
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return d;
}

ByteStream encode_site_decision(std::uint32_t site, std::uint64_t sequence,
                                std::uint64_t absolute_start,
                                const FrameDecision& decision) {
  ByteStream payload;
  put_u32(payload, site);
  const ByteStream inner = encode_decision(sequence, absolute_start, decision);
  payload.insert(payload.end(), inner.begin(), inner.end());
  return payload;
}

std::optional<SiteDecisionRecord> decode_site_decision(
    const ByteStream& payload) {
  ByteReader r(payload);
  const auto site = r.u32();
  if (!site) return std::nullopt;
  auto inner = decode_decision(ByteStream(payload.begin() + 4, payload.end()));
  if (!inner) return std::nullopt;
  SiteDecisionRecord rec;
  rec.site = *site;
  rec.decision = std::move(*inner);
  return rec;
}

ByteStream encode_assoc(const AssocRecord& assoc) {
  ByteStream payload;
  put_u32(payload, assoc.site);
  put_u64(payload, assoc.generation);
  for (std::uint8_t o : assoc.mac) put_u8(payload, o);
  return payload;
}

std::optional<AssocRecord> decode_assoc(const ByteStream& payload) {
  ByteReader r(payload);
  AssocRecord a;
  const auto site = r.u32();
  const auto generation = r.u64();
  if (!site || !generation) return std::nullopt;
  a.site = *site;
  a.generation = *generation;
  for (auto& o : a.mac) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    o = *b;
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return a;
}

ByteStream encode_transport(const TransportRecord& transport) {
  ByteStream payload;
  for (std::uint8_t o : transport.mac) put_u8(payload, o);
  put_u64(payload, transport.generation);
  put_u32(payload, transport.outcome);
  put_u32(payload, transport.attempts);
  return payload;
}

std::optional<TransportRecord> decode_transport(const ByteStream& payload) {
  ByteReader r(payload);
  TransportRecord t;
  for (auto& o : t.mac) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    o = *b;
  }
  const auto generation = r.u64();
  const auto outcome = r.u32();
  const auto attempts = r.u32();
  if (!generation || !outcome || !attempts) return std::nullopt;
  // Only the two HandoffOutcome values exist; anything else is garbage.
  if (*outcome > 1) return std::nullopt;
  t.generation = *generation;
  t.outcome = *outcome;
  t.attempts = *attempts;
  if (!r.done()) return std::nullopt;  // trailing garbage
  return t;
}

ByteStream encode_end(const EndRecord& end, std::uint32_t version) {
  ByteStream payload;
  put_u64(payload, end.chunks);
  put_u64(payload, end.decisions);
  put_u64(payload, end.drains);
  if (version >= kSacpVersionFleet) put_u64(payload, end.assocs);
  return payload;
}

std::optional<EndRecord> decode_end(const ByteStream& payload) {
  ByteReader r(payload);
  EndRecord e;
  const auto chunks = r.u64();
  const auto decisions = r.u64();
  const auto drains = r.u64();
  if (!chunks || !decisions || !drains) return std::nullopt;
  e.chunks = *chunks;
  e.decisions = *decisions;
  e.drains = *drains;
  if (!r.done()) {
    // Version >= 2 appends the assoc total; anything else is garbage.
    const auto assocs = r.u64();
    if (!assocs || !r.done()) return std::nullopt;
    e.assocs = *assocs;
  }
  return e;
}

// -------------------------------------------------------------- mutate

ByteStream mutate_capture(const ByteStream& input, std::uint64_t seed,
                          std::size_t ops) {
  ByteStream out = input;
  Rng rng(seed);
  // Leave the 4-byte magic alone most of the time so mutations exercise
  // the record parsers rather than dying at the first check; one op in
  // sixteen still hits the magic/version words.
  for (std::size_t op = 0; op < ops && !out.empty(); ++op) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.05 && out.size() > 16) {
      // Truncate the tail: simulates a crashed writer.
      out.resize(static_cast<std::size_t>(
          rng.uniform_int(8, static_cast<std::int64_t>(out.size()) - 1)));
      continue;
    }
    if (roll < 0.10) {
      // Append garbage: simulates trailing junk after the end record.
      const std::size_t extra =
          static_cast<std::size_t>(rng.uniform_int(1, 16));
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      continue;
    }
    const std::size_t lo = roll < 0.15 ? 0 : std::min<std::size_t>(4, out.size() - 1);
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(out.size()) - 1));
    const double kind = rng.uniform(0.0, 1.0);
    if (kind < 0.4) {
      out[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    } else if (kind < 0.7) {
      out[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else if (kind < 0.85) {
      out[at] = 0x00;
    } else {
      out[at] = 0xFF;
    }
  }
  return out;
}

}  // namespace sa
