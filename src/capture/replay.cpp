#include "sa/capture/replay.hpp"

#include <utility>

#include "sa/engine/session.hpp"

namespace sa {

std::optional<ReplaySource> ReplaySource::from_file(const std::string& path) {
  auto reader = CaptureReader::from_file(path);
  if (!reader) return std::nullopt;
  return ReplaySource(std::move(*reader));
}

ReplayResult ReplaySource::replay_into(EngineSession& session) {
  ReplayResult result;
  if (!reader_.header()) {
    result.error = "malformed SACP header";
    return result;
  }
  if (reader_.header()->version >= kSacpVersionFleet) {
    result.error =
        "fleet capture (version " +
        std::to_string(reader_.header()->version) +
        "): replay it with replay_fleet_capture / capture_tool --fleet";
    return result;
  }
  const std::uint32_t num_aps = reader_.header()->num_aps;
  reader_.rewind();
  bool saw_end = false;
  for (;;) {
    auto rec = reader_.next();
    if (!rec) break;
    switch (rec->type) {
      case RecordType::kChunk:
        if (rec->chunk->ap >= num_aps) {
          result.error = "chunk record targets AP " +
                         std::to_string(rec->chunk->ap) + " of " +
                         std::to_string(num_aps);
          return result;
        }
        session.submit(rec->chunk->ap, std::move(rec->chunk->samples));
        ++result.chunks_submitted;
        break;
      case RecordType::kDrain:
        session.drain();
        ++result.drains_run;
        break;
      case RecordType::kDecision:
      case RecordType::kSiteDecision:
        break;  // the recorded output tracks; not inputs
      case RecordType::kAssoc:
      case RecordType::kTransport:
        // Meaningful only to the fleet replay driver
        // (replay_fleet_capture), which re-issues the handoff and
        // re-checks its transport verdict; a plain single-session
        // replay has no sites to hand off between.
        break;
      case RecordType::kEnd:
        saw_end = true;
        break;
    }
  }
  if (!reader_.error().empty()) {
    result.error = reader_.error();
    return result;
  }
  if (!saw_end) {
    result.error = "no end record (truncated capture?)";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace sa
