#include "sa/capture/reader.hpp"

#include <cstdio>
#include <map>
#include <utility>

namespace sa {

CaptureReader::CaptureReader(ByteStream data) : data_(std::move(data)) {
  ByteReader r(data_);
  header_ = decode_header(r);
  if (!header_) {
    error_ = "malformed SACP header";
    body_offset_ = data_.size();
  } else {
    body_offset_ = r.offset();
  }
  cursor_ = body_offset_;
}

std::optional<CaptureReader> CaptureReader::from_file(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  ByteStream data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return CaptureReader(std::move(data));
}

void CaptureReader::rewind() {
  cursor_ = body_offset_;
  end_seen_ = false;
  if (header_) error_.clear();
}

std::optional<CaptureRecord> CaptureReader::parse_record(
    ByteReader& r, bool& end_seen, std::string& error) const {
  if (r.done()) return std::nullopt;  // clean EOF
  if (end_seen) {
    error = "data after the end record";
    return std::nullopt;
  }
  const auto len = r.u32();
  const auto type = r.u32();
  if (!len || !type) {
    error = "truncated record framing";
    return std::nullopt;
  }
  if (*len > kMaxRecordPayload || *len > r.remaining()) {
    error = "record length exceeds remaining input";
    return std::nullopt;
  }
  CaptureRecord rec;
  rec.payload.assign(r.cursor(), r.cursor() + *len);
  r.skip(*len);
  switch (static_cast<RecordType>(*type)) {
    case RecordType::kChunk:
      rec.type = RecordType::kChunk;
      rec.chunk = decode_chunk(rec.payload);
      if (!rec.chunk) {
        error = "malformed chunk record";
        return std::nullopt;
      }
      break;
    case RecordType::kDecision:
      rec.type = RecordType::kDecision;
      rec.decision = decode_decision(rec.payload);
      if (!rec.decision) {
        error = "malformed decision record";
        return std::nullopt;
      }
      break;
    case RecordType::kDrain:
      rec.type = RecordType::kDrain;
      if (!rec.payload.empty()) {
        error = "drain record with payload";
        return std::nullopt;
      }
      break;
    case RecordType::kSiteDecision:
      rec.type = RecordType::kSiteDecision;
      rec.site_decision = decode_site_decision(rec.payload);
      if (!rec.site_decision) {
        error = "malformed site-decision record";
        return std::nullopt;
      }
      break;
    case RecordType::kAssoc:
      rec.type = RecordType::kAssoc;
      rec.assoc = decode_assoc(rec.payload);
      if (!rec.assoc) {
        error = "malformed assoc record";
        return std::nullopt;
      }
      break;
    case RecordType::kTransport:
      rec.type = RecordType::kTransport;
      rec.transport = decode_transport(rec.payload);
      if (!rec.transport) {
        error = "malformed transport record";
        return std::nullopt;
      }
      break;
    case RecordType::kEnd:
      rec.type = RecordType::kEnd;
      rec.end = decode_end(rec.payload);
      if (!rec.end) {
        error = "malformed end record";
        return std::nullopt;
      }
      end_seen = true;
      break;
    default:
      error = "unknown record type " + std::to_string(*type);
      return std::nullopt;
  }
  return rec;
}

std::optional<CaptureRecord> CaptureReader::next() {
  if (!header_ || !error_.empty()) return std::nullopt;
  ByteReader r(data_.data() + cursor_, data_.size() - cursor_);
  auto rec = parse_record(r, end_seen_, error_);
  cursor_ += r.offset();
  return rec;
}

ValidationReport CaptureReader::validate() const {
  ValidationReport report;
  if (!header_) {
    report.error = "malformed SACP header";
    return report;
  }
  ByteReader r(data_.data() + body_offset_, data_.size() - body_offset_);
  bool end_seen = false;
  std::string error;
  std::optional<EndRecord> end;
  for (;;) {
    auto rec = parse_record(r, end_seen, error);
    if (!rec) break;
    switch (rec->type) {
      case RecordType::kChunk: ++report.chunks; break;
      case RecordType::kDecision: ++report.decisions; break;
      case RecordType::kSiteDecision: ++report.decisions; break;
      case RecordType::kAssoc: ++report.assocs; break;
      case RecordType::kTransport: ++report.transports; break;
      case RecordType::kDrain: ++report.drains; break;
      case RecordType::kEnd: end = rec->end; break;
    }
    ++report.record_index;
  }
  if (!error.empty()) {
    report.error = error;
    return report;
  }
  if (!end) {
    report.error = "no end record (truncated capture?)";
    return report;
  }
  report.end_seen = true;
  if (end->chunks != report.chunks || end->decisions != report.decisions ||
      end->drains != report.drains || end->assocs != report.assocs) {
    report.error = "end-record totals disagree with the records present";
    return report;
  }
  report.ok = true;
  return report;
}

std::vector<ByteStream> CaptureReader::decision_payloads() const {
  std::vector<ByteStream> out;
  if (!header_) return out;
  ByteReader r(data_.data() + body_offset_, data_.size() - body_offset_);
  bool end_seen = false;
  std::string error;
  for (;;) {
    auto rec = parse_record(r, end_seen, error);
    if (!rec) break;
    if (rec->type == RecordType::kDecision) {
      out.push_back(std::move(rec->payload));
    }
  }
  return out;
}

namespace {

CaptureDiff not_equal(std::string detail) { return {false, std::move(detail)}; }

}  // namespace

CaptureDiff diff_captures(const CaptureReader& a, const CaptureReader& b) {
  if (!a.header() || !b.header()) {
    return not_equal("malformed header in one of the captures");
  }
  if (a.header()->num_aps != b.header()->num_aps) {
    return not_equal("AP counts differ: " +
                     std::to_string(a.header()->num_aps) + " vs " +
                     std::to_string(b.header()->num_aps));
  }

  struct Tracks {
    /// Per-AP chunk payloads in that AP's stream order: per-AP order is
    /// submission order regardless of how concurrent submitters
    /// interleaved in the file, so it is the right unit of comparison.
    std::vector<std::vector<ByteStream>> chunks_by_ap;
    std::vector<ByteStream> decisions;
    /// Per-site decision payloads in that site's sequence order (fleet
    /// sites emit concurrently, so only the per-site subsequence is
    /// deterministic — the chunk-track argument, one level up).
    std::map<std::uint32_t, std::vector<ByteStream>> decisions_by_site;
    std::vector<ByteStream> assocs;
    std::vector<ByteStream> transports;
    std::uint64_t drains = 0;
    bool ok = true;
  };
  const auto extract = [](const CaptureReader& reader) {
    Tracks t;
    t.chunks_by_ap.resize(reader.header()->num_aps);
    CaptureReader walk(reader.bytes());
    for (;;) {
      auto rec = walk.next();
      if (!rec) break;
      switch (rec->type) {
        case RecordType::kChunk:
          if (rec->chunk->ap >= t.chunks_by_ap.size()) {
            t.ok = false;
            return t;
          }
          t.chunks_by_ap[rec->chunk->ap].push_back(std::move(rec->payload));
          break;
        case RecordType::kDecision:
          t.decisions.push_back(std::move(rec->payload));
          break;
        case RecordType::kSiteDecision:
          t.decisions_by_site[rec->site_decision->site].push_back(
              std::move(rec->payload));
          break;
        case RecordType::kAssoc:
          t.assocs.push_back(std::move(rec->payload));
          break;
        case RecordType::kTransport:
          t.transports.push_back(std::move(rec->payload));
          break;
        case RecordType::kDrain: ++t.drains; break;
        case RecordType::kEnd: break;
      }
    }
    t.ok = walk.error().empty();
    return t;
  };
  const Tracks ta = extract(a);
  const Tracks tb = extract(b);
  if (!ta.ok || !tb.ok) return not_equal("malformed record in one capture");

  for (std::size_t ap = 0; ap < ta.chunks_by_ap.size(); ++ap) {
    const auto& ca = ta.chunks_by_ap[ap];
    const auto& cb = tb.chunks_by_ap[ap];
    if (ca.size() != cb.size()) {
      return not_equal("AP " + std::to_string(ap) + " chunk counts differ: " +
                       std::to_string(ca.size()) + " vs " +
                       std::to_string(cb.size()));
    }
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i] != cb[i]) {
        return not_equal("AP " + std::to_string(ap) + " chunk " +
                         std::to_string(i) + " differs byte-wise");
      }
    }
  }
  if (ta.decisions.size() != tb.decisions.size()) {
    return not_equal("decision counts differ: " +
                     std::to_string(ta.decisions.size()) + " vs " +
                     std::to_string(tb.decisions.size()));
  }
  for (std::size_t i = 0; i < ta.decisions.size(); ++i) {
    if (ta.decisions[i] != tb.decisions[i]) {
      return not_equal("decision record " + std::to_string(i) +
                       " differs byte-wise");
    }
  }
  if (ta.decisions_by_site.size() != tb.decisions_by_site.size()) {
    return not_equal("site counts differ: " +
                     std::to_string(ta.decisions_by_site.size()) + " vs " +
                     std::to_string(tb.decisions_by_site.size()));
  }
  for (const auto& [site, da] : ta.decisions_by_site) {
    const auto it = tb.decisions_by_site.find(site);
    if (it == tb.decisions_by_site.end()) {
      return not_equal("site " + std::to_string(site) +
                       " present in only one capture");
    }
    const auto& db = it->second;
    if (da.size() != db.size()) {
      return not_equal("site " + std::to_string(site) +
                       " decision counts differ: " + std::to_string(da.size()) +
                       " vs " + std::to_string(db.size()));
    }
    for (std::size_t i = 0; i < da.size(); ++i) {
      if (da[i] != db[i]) {
        return not_equal("site " + std::to_string(site) + " decision " +
                         std::to_string(i) + " differs byte-wise");
      }
    }
  }
  if (ta.assocs.size() != tb.assocs.size()) {
    return not_equal("assoc counts differ: " + std::to_string(ta.assocs.size()) +
                     " vs " + std::to_string(tb.assocs.size()));
  }
  for (std::size_t i = 0; i < ta.assocs.size(); ++i) {
    if (ta.assocs[i] != tb.assocs[i]) {
      return not_equal("assoc record " + std::to_string(i) +
                       " differs byte-wise");
    }
  }
  if (ta.transports.size() != tb.transports.size()) {
    return not_equal("transport record counts differ: " +
                     std::to_string(ta.transports.size()) + " vs " +
                     std::to_string(tb.transports.size()));
  }
  for (std::size_t i = 0; i < ta.transports.size(); ++i) {
    if (ta.transports[i] != tb.transports[i]) {
      return not_equal("transport record " + std::to_string(i) +
                       " differs byte-wise");
    }
  }
  if (ta.drains != tb.drains) {
    return not_equal("drain counts differ: " + std::to_string(ta.drains) +
                     " vs " + std::to_string(tb.drains));
  }
  return {true, ""};
}

}  // namespace sa
