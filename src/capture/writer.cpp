#include "sa/capture/writer.hpp"

#include <cstdio>
#include <utility>

#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

namespace sa {

CaptureWriter::CaptureWriter(const std::string& path, CaptureHeader header)
    : path_(path), version_(header.version) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw Error("CaptureWriter: cannot open '" + path + "' for writing");
  }
  const ByteStream head = encode_header(header);
  if (std::fwrite(head.data(), 1, head.size(), file_) != head.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw Error("CaptureWriter: header write to '" + path + "' failed");
  }
  flusher_ = std::thread([this] { flusher_loop(); });
}

CaptureWriter::~CaptureWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    log_error() << "CaptureWriter close failed in destructor: " << e.what();
  }
}

void CaptureWriter::enqueue(RecordType type, const ByteStream& payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw StateError("CaptureWriter: record after close()");
    append_record(pending_, type, payload);
    switch (type) {
      case RecordType::kChunk: ++chunks_; break;
      case RecordType::kDecision: ++decisions_; break;
      case RecordType::kSiteDecision: ++decisions_; break;
      case RecordType::kAssoc: ++assocs_; break;
      case RecordType::kTransport: break;  // not tallied in kEnd
      case RecordType::kDrain: ++drains_; break;
      case RecordType::kEnd: break;
    }
    ++generation_;
  }
  work_cv_.notify_one();
}

void CaptureWriter::record_chunk(std::size_t ap, std::uint64_t round,
                                 std::uint64_t base, const CMat& samples) {
  enqueue(RecordType::kChunk,
          encode_chunk(static_cast<std::uint32_t>(ap), round, base, samples));
}

void CaptureWriter::record_decision(std::uint64_t sequence,
                                    std::uint64_t absolute_start,
                                    const FrameDecision& decision) {
  enqueue(RecordType::kDecision,
          encode_decision(sequence, absolute_start, decision));
}

void CaptureWriter::record_site_decision(std::uint32_t site,
                                         std::uint64_t sequence,
                                         std::uint64_t absolute_start,
                                         const FrameDecision& decision) {
  enqueue(RecordType::kSiteDecision,
          encode_site_decision(site, sequence, absolute_start, decision));
}

void CaptureWriter::record_assoc(const AssocRecord& assoc) {
  enqueue(RecordType::kAssoc, encode_assoc(assoc));
}

void CaptureWriter::record_transport(const TransportRecord& transport) {
  enqueue(RecordType::kTransport, encode_transport(transport));
}

void CaptureWriter::record_drain() { enqueue(RecordType::kDrain, {}); }

void CaptureWriter::flusher_loop() {
  ByteStream block;
  for (;;) {
    std::uint64_t upto = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty() && stop_) return;
      // Capture the generation under the same lock as the swap: at this
      // instant pending_ holds every record up to generation_.
      upto = generation_;
      block.swap(pending_);
    }
    bool ok = true;
    if (!block.empty() && file_ != nullptr) {
      ok = std::fwrite(block.data(), 1, block.size(), file_) == block.size();
      if (ok) ok = std::fflush(file_) == 0;
    }
    block.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      flushed_gen_ = upto;
      if (!ok) write_failed_ = true;
    }
    drained_cv_.notify_all();
  }
}

void CaptureWriter::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t target = generation_;
  drained_cv_.wait(lock, [&] { return flushed_gen_ >= target; });
  if (write_failed_) {
    throw Error("CaptureWriter: write to '" + path_ + "' failed");
  }
}

void CaptureWriter::close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return;
    EndRecord end;
    end.chunks = chunks_;
    end.decisions = decisions_;
    end.drains = drains_;
    end.assocs = assocs_;
    append_record(pending_, RecordType::kEnd, encode_end(end, version_));
    ++generation_;
    closed_ = true;
    stop_ = true;
  }
  work_cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  bool failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed = write_failed_;
  }
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) failed = true;
    file_ = nullptr;
  }
  if (failed) {
    throw Error("CaptureWriter: write to '" + path_ + "' failed");
  }
}

bool CaptureWriter::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::uint64_t CaptureWriter::chunks_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_;
}

std::uint64_t CaptureWriter::decisions_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

std::uint64_t CaptureWriter::drains_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drains_;
}

std::uint64_t CaptureWriter::assocs_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assocs_;
}

}  // namespace sa
