#include "sa/channel/fading.hpp"

#include <cmath>

#include "sa/common/error.hpp"

namespace sa {

PathFading::PathFading(const std::vector<PropagationPath>& paths,
                       FadingConfig config, Rng& rng)
    : config_(config), rng_(rng.fork()) {
  SA_EXPECTS(config_.fast_coherence_s > 0.0);
  SA_EXPECTS(config_.slow_coherence_s > 0.0);
  states_.reserve(paths.size());
  for (const auto& p : paths) {
    State s;
    if (p.num_reflections == 0) {
      s.fast_sigma = config_.direct_fast_sigma;
      s.slow_sigma = config_.direct_slow_sigma;
    } else {
      s.fast_sigma = config_.reflection_fast_sigma;
      s.slow_sigma = config_.reflection_slow_sigma;
    }
    // Start in steady state so t = 0 is statistically typical.
    s.fast = rng_.complex_normal(s.fast_sigma * s.fast_sigma);
    s.slow = rng_.complex_normal(s.slow_sigma * s.slow_sigma);
    states_.push_back(s);
  }
}

void PathFading::advance(double dt_s) {
  SA_EXPECTS(dt_s >= 0.0);
  if (dt_s == 0.0) return;
  const double rho_fast = std::exp(-dt_s / config_.fast_coherence_s);
  const double rho_slow = std::exp(-dt_s / config_.slow_coherence_s);
  for (State& s : states_) {
    // AR(1): x' = rho x + sqrt(1 - rho^2) * CN(0, sigma^2).
    s.fast = s.fast * rho_fast +
             rng_.complex_normal((1.0 - rho_fast * rho_fast) * s.fast_sigma *
                                 s.fast_sigma);
    s.slow = s.slow * rho_slow +
             rng_.complex_normal((1.0 - rho_slow * rho_slow) * s.slow_sigma *
                                 s.slow_sigma);
  }
}

cd PathFading::factor(std::size_t i) const {
  SA_EXPECTS(i < states_.size());
  return cd{1.0, 0.0} + states_[i].fast + states_[i].slow;
}

std::vector<PropagationPath> PathFading::faded_paths(
    const std::vector<PropagationPath>& paths) const {
  SA_EXPECTS(paths.size() == states_.size());
  std::vector<PropagationPath> out = paths;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].gain *= factor(i);
  }
  return out;
}

double empirical_coherence_time(const std::vector<cd>& series, double dt_s) {
  SA_EXPECTS(series.size() >= 4);
  SA_EXPECTS(dt_s > 0.0);
  // Remove the mean so we correlate the fluctuation, then find the lag at
  // which normalized autocorrelation drops below 0.5.
  cd mean{0.0, 0.0};
  for (const cd& x : series) mean += x;
  mean /= static_cast<double>(series.size());
  std::vector<cd> centered(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) centered[i] = series[i] - mean;

  double r0 = 0.0;
  for (const cd& x : centered) r0 += std::norm(x);
  if (r0 <= 0.0) return static_cast<double>(series.size()) * dt_s;

  for (std::size_t lag = 1; lag < series.size(); ++lag) {
    cd acc{0.0, 0.0};
    for (std::size_t i = 0; i + lag < series.size(); ++i) {
      acc += std::conj(centered[i]) * centered[i + lag];
    }
    const double rho = acc.real() / r0;
    if (rho < 0.5) return static_cast<double>(lag) * dt_s;
  }
  return static_cast<double>(series.size()) * dt_s;
}

}  // namespace sa
