#include "sa/channel/simulator.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/noise.hpp"

namespace sa {

ChannelSimulator::ChannelSimulator(ChannelConfig config) : config_(config) {
  SA_EXPECTS(config_.carrier_hz > 0.0);
  SA_EXPECTS(config_.sample_rate_hz > 0.0);
  SA_EXPECTS(config_.noise_power >= 0.0);
}

CVec ChannelSimulator::path_steering(const PropagationPath& path,
                                     const ArrayPlacement& placement) const {
  const double lambda = wavelength(config_.carrier_hz);
  const Vec2 u{std::cos(deg2rad(path.arrival_bearing_deg)),
               std::sin(deg2rad(path.arrival_bearing_deg))};
  const auto world = placement.geometry.world_positions(
      placement.origin, placement.orientation_deg);
  CVec a(world.size());
  for (std::size_t m = 0; m < world.size(); ++m) {
    const Vec2 q = world[m] - placement.origin;
    const double phase = kTwoPi * dot(q, u) / lambda;
    a[m] = cd{std::cos(phase), std::sin(phase)};
  }
  return a;
}

CVec ChannelSimulator::channel_vector(
    const std::vector<PropagationPath>& paths,
    const ArrayPlacement& placement) const {
  CVec h(placement.geometry.size(), cd{0.0, 0.0});
  for (const auto& p : paths) {
    const CVec a = path_steering(p, placement);
    for (std::size_t m = 0; m < h.size(); ++m) h[m] += p.gain * a[m];
  }
  return h;
}

CMat ChannelSimulator::propagate(const CVec& waveform,
                                 const std::vector<PropagationPath>& paths,
                                 const ArrayPlacement& placement,
                                 Rng& rng) const {
  SA_EXPECTS(!waveform.empty());
  const std::size_t n_ant = placement.geometry.size();

  // Output length must cover the longest-delayed copy.
  double max_delay = 0.0;
  for (const auto& p : paths) max_delay = std::max(max_delay, p.delay_s);
  const auto max_delay_samples = static_cast<std::size_t>(
      std::ceil(max_delay * config_.sample_rate_hz)) + 1;
  const std::size_t n_samples = waveform.size() + max_delay_samples;

  // Apply CFO once on the transmit side (identical on all chains).
  CVec tx = waveform;
  if (config_.cfo_hz != 0.0) {
    apply_cfo(tx, config_.cfo_hz, config_.sample_rate_hz);
  }

  CMat rx(n_ant, n_samples);
  for (const auto& p : paths) {
    const CVec delayed =
        fractional_delay(tx, p.delay_s * config_.sample_rate_hz);
    const CVec a = path_steering(p, placement);
    for (std::size_t m = 0; m < n_ant; ++m) {
      const cd g = p.gain * a[m];
      const std::size_t n = std::min(delayed.size(), n_samples);
      for (std::size_t t = 0; t < n; ++t) {
        rx(m, t) += g * delayed[t];
      }
    }
  }
  if (config_.noise_power > 0.0) {
    for (std::size_t m = 0; m < n_ant; ++m) {
      for (std::size_t t = 0; t < n_samples; ++t) {
        rx(m, t) += rng.complex_normal(config_.noise_power);
      }
    }
  }
  return rx;
}

void ChannelSimulator::mix_into(CMat& rx, const CVec& waveform,
                                const std::vector<PropagationPath>& paths,
                                const ArrayPlacement& placement,
                                std::size_t offset, Rng& rng) const {
  SA_EXPECTS(rx.rows() == placement.geometry.size());
  // Propagate without noise (the buffer already has its noise floor).
  ChannelConfig quiet = config_;
  quiet.noise_power = 0.0;
  const ChannelSimulator sub(quiet);
  const CMat add = sub.propagate(waveform, paths, placement, rng);
  for (std::size_t m = 0; m < rx.rows(); ++m) {
    for (std::size_t t = 0; t < add.cols(); ++t) {
      const std::size_t dst = offset + t;
      if (dst >= rx.cols()) break;
      rx(m, dst) += add(m, t);
    }
  }
}

}  // namespace sa
