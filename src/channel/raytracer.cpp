#include "sa/channel/raytracer.hpp"

#include <algorithm>
#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

namespace {

/// Obstacle-scale walls (pillars, furniture) admit knife-edge diffraction
/// around their ends; room-scale walls do not (their ends meet other
/// walls). 3 m is the cutoff between the two regimes.
constexpr double kObstacleScaleM = 3.0;

/// ITU-style knife-edge diffraction loss J(v) in dB for the Fresnel
/// parameter v >= 0 (the path grazes or crosses the edge).
double knife_edge_loss_db(double v) {
  const double t = v - 0.1;
  return 6.9 + 20.0 * std::log10(std::sqrt(t * t + 1.0) + t);
}

/// Loss contributed by one crossed wall: through-material penetration,
/// or — for short obstacle walls — energy diffracted around the nearest
/// edge when that is cheaper. A convex obstacle is crossed through two
/// faces, so each face carries half the edge's diffraction loss.
double crossing_loss_db(const Wall& wall, Vec2 from, Vec2 to, Vec2 crossing,
                        double lambda) {
  const double pen = wall.transmission_loss_db;
  if (wall.segment.length() >= kObstacleScaleM) return pen;
  const double d1 = std::max(distance(from, crossing), 0.05);
  const double d2 = std::max(distance(crossing, to), 0.05);
  // Clearance to the nearest wall end = how far the path would have to
  // bend to round the edge.
  const double h = std::min(distance(crossing, wall.segment.a),
                            distance(crossing, wall.segment.b));
  const double v = h * std::sqrt(2.0 * (d1 + d2) / (lambda * d1 * d2));
  return std::min(pen, knife_edge_loss_db(v) / 2.0);
}

/// Total loss along one leg, skipping the reflecting wall indices (legs
/// touch their own walls at the bounce point; `blocks` already ignores
/// endpoint grazes, but skipping by index is belt-and-braces for
/// numerically short legs).
double leg_loss_db(const Floorplan& plan, Vec2 from, Vec2 to,
                   const std::vector<std::size_t>& skip, double lambda) {
  double loss = 0.0;
  const auto& walls = plan.walls();
  for (std::size_t i = 0; i < walls.size(); ++i) {
    if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
    if (!blocks(walls[i].segment, from, to)) continue;
    const auto hit = intersect(walls[i].segment, Segment{from, to});
    if (!hit) continue;
    loss += crossing_loss_db(walls[i], from, to, *hit, lambda);
  }
  return loss;
}

}  // namespace

RayTracer::RayTracer(RayTracerConfig config) : config_(config) {
  SA_EXPECTS(config_.carrier_hz > 0.0);
  SA_EXPECTS(config_.max_reflections >= 0 && config_.max_reflections <= 2);
}

std::vector<PropagationPath> RayTracer::trace(Vec2 tx, Vec2 rx,
                                              const Floorplan& plan) const {
  const double lambda = wavelength(config_.carrier_hz);
  const double min_amp =
      config_.reference_amplitude * std::pow(10.0, config_.min_gain_db / 20.0);
  std::vector<PropagationPath> out;

  auto finish_path = [&](std::vector<Vec2> points, double refl_product,
                         double pen_db, int bounces) {
    double length = 0.0;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      length += distance(points[i], points[i + 1]);
    }
    if (length < 1e-6) return;  // degenerate (tx == rx)
    const double amp = config_.reference_amplitude / std::max(length, 1.0) *
                       refl_product * std::pow(10.0, -pen_db / 20.0);
    if (amp < min_amp) return;
    PropagationPath p;
    const double phase = -kTwoPi * length / lambda;
    p.gain = cd{amp * std::cos(phase), amp * std::sin(phase)};
    p.length_m = length;
    p.delay_s = length / kSpeedOfLight;
    p.num_reflections = bounces;
    p.arrival_bearing_deg = bearing_deg(rx, points[points.size() - 2]);
    p.departure_bearing_deg = bearing_deg(tx, points[1]);
    p.points = std::move(points);
    out.push_back(std::move(p));
  };

  // ---- Direct path.
  if (distance(tx, rx) > 1e-6) {
    finish_path({tx, rx}, 1.0, leg_loss_db(plan, tx, rx, {}, lambda), 0);
  }

  const auto& walls = plan.walls();

  // ---- First-order reflections.
  if (config_.max_reflections >= 1) {
    for (std::size_t wi = 0; wi < walls.size(); ++wi) {
      const Wall& w = walls[wi];
      if (w.reflectivity <= 0.0) continue;
      const Vec2 image = w.segment.mirror(tx);
      const auto bounce = intersect(Segment{image, rx}, w.segment);
      if (!bounce) continue;
      if (distance(*bounce, tx) < 1e-6 || distance(*bounce, rx) < 1e-6) continue;
      const double pen = leg_loss_db(plan, tx, *bounce, {wi}, lambda) +
                         leg_loss_db(plan, *bounce, rx, {wi}, lambda);
      finish_path({tx, *bounce, rx}, w.reflectivity, pen, 1);
    }
  }

  // ---- Second-order reflections.
  if (config_.max_reflections >= 2) {
    for (std::size_t w1 = 0; w1 < walls.size(); ++w1) {
      if (walls[w1].reflectivity <= 0.0) continue;
      const Vec2 img1 = walls[w1].segment.mirror(tx);
      for (std::size_t w2 = 0; w2 < walls.size(); ++w2) {
        if (w2 == w1 || walls[w2].reflectivity <= 0.0) continue;
        const Vec2 img2 = walls[w2].segment.mirror(img1);
        const auto p2 = intersect(Segment{img2, rx}, walls[w2].segment);
        if (!p2) continue;
        const auto p1 = intersect(Segment{img1, *p2}, walls[w1].segment);
        if (!p1) continue;
        if (distance(*p1, tx) < 1e-6 || distance(*p2, rx) < 1e-6 ||
            distance(*p1, *p2) < 1e-6) {
          continue;
        }
        const double pen = leg_loss_db(plan, tx, *p1, {w1}, lambda) +
                           leg_loss_db(plan, *p1, *p2, {w1, w2}, lambda) +
                           leg_loss_db(plan, *p2, rx, {w2}, lambda);
        finish_path({tx, *p1, *p2, rx},
                    walls[w1].reflectivity * walls[w2].reflectivity, pen, 2);
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const PropagationPath& a, const PropagationPath& b) {
              return std::abs(a.gain) > std::abs(b.gain);
            });
  return out;
}

}  // namespace sa
