#include "sa/channel/floorplan.hpp"

#include "sa/common/error.hpp"

namespace sa {

void Floorplan::add_wall(Wall wall) {
  SA_EXPECTS(wall.segment.length() > 0.0);
  SA_EXPECTS(wall.reflectivity >= 0.0 && wall.reflectivity <= 1.0);
  SA_EXPECTS(wall.transmission_loss_db >= 0.0);
  walls_.push_back(wall);
}

void Floorplan::add_room(Vec2 min_corner, Vec2 max_corner, double loss_db,
                         double reflectivity, const char* name) {
  const Polygon box = Polygon::rectangle(min_corner, max_corner);
  for (const Segment& edge : box.edges()) {
    add_wall(Wall{edge, loss_db, reflectivity, name});
  }
}

void Floorplan::add_obstacle(const Polygon& shape, double loss_db,
                             double reflectivity, const char* name) {
  for (const Segment& edge : shape.edges()) {
    add_wall(Wall{edge, loss_db, reflectivity, name});
  }
}

double Floorplan::penetration_loss_db(Vec2 from, Vec2 to) const {
  double loss = 0.0;
  for (const Wall& w : walls_) {
    if (blocks(w.segment, from, to)) loss += w.transmission_loss_db;
  }
  return loss;
}

bool Floorplan::line_of_sight(Vec2 from, Vec2 to) const {
  for (const Wall& w : walls_) {
    if (blocks(w.segment, from, to)) return false;
  }
  return true;
}

}  // namespace sa
