#include "sa/common/thread_pool.hpp"

#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

namespace sa {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  SA_EXPECTS(num_threads >= 1);
  SA_EXPECTS(queue_capacity >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SA_EXPECTS(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return queue_.size() < capacity_ || stopping_; });
    if (stopping_) {
      throw StateError("ThreadPool::submit on a stopping pool");
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // A future-wrapped task (async) stores its exception; a raw submit()
    // task has no channel to report one, and letting it escape the worker
    // would std::terminate the process.
    try {
      task();
    } catch (const std::exception& e) {
      log_error() << "ThreadPool task threw: " << e.what();
    } catch (...) {
      log_error() << "ThreadPool task threw a non-exception";
    }
  }
}

}  // namespace sa
