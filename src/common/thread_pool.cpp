#include "sa/common/thread_pool.hpp"

#include <algorithm>

#include "sa/common/error.hpp"
#include "sa/common/logging.hpp"

namespace sa {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  SA_EXPECTS(num_threads >= 1);
  SA_EXPECTS(queue_capacity >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(std::move(task), nullptr);
}

void ThreadPool::submit(std::function<void()> task, std::uint64_t epoch) {
  enqueue(std::move(task), &epoch);
}

void ThreadPool::enqueue(std::function<void()> task, const std::uint64_t* epoch) {
  SA_EXPECTS(task != nullptr);
  // Epoch-tagged tasks are wrapped so the epoch's outstanding count drops
  // when the task *finishes*, not when it is dequeued — an epoch is in
  // flight while any of its work is queued or running.
  if (epoch != nullptr) {
    const std::uint64_t e = *epoch;
    task = [this, e, inner = std::move(task)] {
      try {
        inner();
      } catch (...) {
        finish_epoch(e);
        throw;
      }
      finish_epoch(e);
    };
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_ && !stopping_) {
      ++stats_.queue_full_blocks;
    }
    not_full_.wait(lock,
                   [this] { return queue_.size() < capacity_ || stopping_; });
    if (stopping_) {
      throw StateError("ThreadPool::submit on a stopping pool");
    }
    if (epoch != nullptr) {
      ++epoch_outstanding_[*epoch];
      max_epochs_in_flight_ =
          std::max(max_epochs_in_flight_, epoch_outstanding_.size());
    }
    queue_.push_back(std::move(task));
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  not_empty_.notify_one();
}

void ThreadPool::finish_epoch(std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = epoch_outstanding_.find(epoch);
  if (it != epoch_outstanding_.end() && --it->second == 0) {
    epoch_outstanding_.erase(it);
    lock.unlock();
    epoch_idle_.notify_all();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ThreadPool::epochs_in_flight() const {
  std::unique_lock<std::mutex> lock(mu_);
  return epoch_outstanding_.size();
}

std::size_t ThreadPool::max_epochs_in_flight() const {
  std::unique_lock<std::mutex> lock(mu_);
  return max_epochs_in_flight_;
}

void ThreadPool::wait_epoch_idle(std::uint64_t epoch) const {
  std::unique_lock<std::mutex> lock(mu_);
  epoch_idle_.wait(lock, [this, epoch] {
    return epoch_outstanding_.find(epoch) == epoch_outstanding_.end();
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() && !stopping_) ++stats_.idle_waits;
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // A future-wrapped task (async) stores its exception; a raw submit()
    // task has no channel to report one, and letting it escape the worker
    // would std::terminate the process.
    try {
      task();
    } catch (const std::exception& e) {
      log_error() << "ThreadPool task threw: " << e.what();
    } catch (...) {
      log_error() << "ThreadPool task threw a non-exception";
    }
  }
}

}  // namespace sa
