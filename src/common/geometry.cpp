#include "sa/common/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"

namespace sa {

double Vec2::norm() const { return std::hypot(x, y); }

Vec2 Vec2::normalized() const {
  const double n = norm();
  SA_EXPECTS(n > 0.0);
  return {x / n, y / n};
}

Vec2 Vec2::rotated(double rad) const {
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  return {c * x - s * y, s * x + c * y};
}

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

double bearing_rad(Vec2 from, Vec2 to) {
  return wrap_2pi(std::atan2(to.y - from.y, to.x - from.x));
}

double bearing_deg(Vec2 from, Vec2 to) { return rad2deg(bearing_rad(from, to)); }

Vec2 Segment::mirror(Vec2 p) const {
  const Vec2 d = b - a;
  const double len_sq = d.norm_sq();
  SA_EXPECTS(len_sq > 0.0);
  const double t = dot(p - a, d) / len_sq;
  const Vec2 foot = a + d * t;
  return foot * 2.0 - p;
}

Vec2 Segment::normal() const { return (b - a).perp().normalized(); }

std::optional<Vec2> intersect(const Segment& s, const Segment& t) {
  const Vec2 r = s.b - s.a;
  const Vec2 q = t.b - t.a;
  const double denom = cross(r, q);
  if (std::abs(denom) < 1e-15) return std::nullopt;  // parallel or collinear
  const Vec2 diff = t.a - s.a;
  const double u = cross(diff, q) / denom;  // position along s
  const double v = cross(diff, r) / denom;  // position along t
  if (u < 0.0 || u > 1.0 || v < 0.0 || v > 1.0) return std::nullopt;
  return s.a + r * u;
}

bool blocks(const Segment& wall, Vec2 from, Vec2 to, double eps) {
  const Segment path{from, to};
  const auto hit = intersect(wall, path);
  if (!hit) return false;
  // Ignore hits essentially at the path's endpoints: a reflection point on
  // the wall itself, or the antenna standing against a wall.
  if (distance(*hit, from) < eps || distance(*hit, to) < eps) return false;
  return true;
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  SA_EXPECTS(vertices_.size() >= 3);
}

bool Polygon::contains(Vec2 p) const {
  // Ray casting with boundary tolerance: points within 1e-9 of an edge
  // count as inside so fence decisions are stable at the boundary.
  const std::size_t n = vertices_.size();
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 vi = vertices_[i];
    const Vec2 vj = vertices_[j];
    // Boundary check: distance from p to edge (vj, vi).
    const Vec2 e = vi - vj;
    const double elen_sq = e.norm_sq();
    if (elen_sq > 0.0) {
      const double t = std::clamp(dot(p - vj, e) / elen_sq, 0.0, 1.0);
      if (distance(vj + e * t, p) < 1e-9) return true;
    }
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_at =
          vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

std::vector<Segment> Polygon::edges() const {
  std::vector<Segment> out;
  const std::size_t n = vertices_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({vertices_[i], vertices_[(i + 1) % n]});
  }
  return out;
}

double Polygon::area() const {
  double a = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    a += cross(vertices_[i], vertices_[(i + 1) % n]);
  }
  return std::abs(a) / 2.0;
}

Vec2 Polygon::centroid() const {
  // Area-weighted centroid of a simple polygon.
  double a = 0.0;
  Vec2 c{0.0, 0.0};
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % n];
    const double w = cross(p, q);
    a += w;
    c = c + (p + q) * w;
  }
  SA_EXPECTS(std::abs(a) > 0.0);
  return c / (3.0 * a);
}

Polygon Polygon::rectangle(Vec2 min_corner, Vec2 max_corner) {
  SA_EXPECTS(max_corner.x > min_corner.x && max_corner.y > min_corner.y);
  return Polygon({{min_corner.x, min_corner.y},
                  {max_corner.x, min_corner.y},
                  {max_corner.x, max_corner.y},
                  {min_corner.x, max_corner.y}});
}

std::optional<Vec2> intersect_bearings(const std::vector<Vec2>& origins,
                                       const std::vector<double>& bearings_rad) {
  SA_EXPECTS(origins.size() == bearings_rad.size());
  SA_EXPECTS(origins.size() >= 2);
  // Each ray contributes the constraint (I - d d^T) (p - o) = 0.
  // Accumulate the 2x2 normal equations A p = b.
  double a00 = 0.0, a01 = 0.0, a11 = 0.0, b0 = 0.0, b1 = 0.0;
  for (std::size_t i = 0; i < origins.size(); ++i) {
    const double dx = std::cos(bearings_rad[i]);
    const double dy = std::sin(bearings_rad[i]);
    const double m00 = 1.0 - dx * dx;
    const double m01 = -dx * dy;
    const double m11 = 1.0 - dy * dy;
    a00 += m00;
    a01 += m01;
    a11 += m11;
    b0 += m00 * origins[i].x + m01 * origins[i].y;
    b1 += m01 * origins[i].x + m11 * origins[i].y;
  }
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) < 1e-9) return std::nullopt;
  return Vec2{(a11 * b0 - a01 * b1) / det, (a00 * b1 - a01 * b0) / det};
}

}  // namespace sa
