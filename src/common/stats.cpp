#include "sa/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sa/common/error.hpp"

namespace sa {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(n - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  SA_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  SA_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double percentile(std::vector<double> xs, double p) {
  SA_EXPECTS(!xs.empty());
  SA_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

namespace {

// ln Gamma via the Lanczos approximation (g = 7, n = 9), accurate to
// ~1e-13 for positive arguments, which is ample for CI computation.
double lgamma_lanczos(double x) {
  static const double coef[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(3.141592653589793 / std::sin(3.141592653589793 * x)) -
           lgamma_lanczos(1.0 - x);
  }
  x -= 1.0;
  double a = coef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * 3.141592653589793) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

// Continued fraction for the incomplete beta function (modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  throw NumericalError("incomplete_beta: continued fraction did not converge");
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  SA_EXPECTS(a > 0.0 && b > 0.0);
  SA_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = lgamma_lanczos(a + b) - lgamma_lanczos(a) -
                          lgamma_lanczos(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly when it converges fast, else the
  // symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  SA_EXPECTS(df > 0.0);
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

double student_t_critical(double confidence, double df) {
  SA_EXPECTS(confidence > 0.0 && confidence < 1.0);
  SA_EXPECTS(df > 0.0);
  const double target = 0.5 + confidence / 2.0;  // upper-tail CDF value
  double lo = 0.0, hi = 1.0;
  while (student_t_cdf(hi, df) < target) {
    hi *= 2.0;
    if (hi > 1e9) throw NumericalError("student_t_critical: bracket failed");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval confidence_interval(const std::vector<double>& xs,
                                       double confidence) {
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.n = xs.size();
  ci.mean = mean(xs);
  if (xs.size() < 2) {
    ci.half_width = 0.0;
    return ci;
  }
  const double se = stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
  const double tcrit =
      student_t_critical(confidence, static_cast<double>(xs.size() - 1));
  ci.half_width = tcrit * se;
  return ci;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double empirical_cdf(const std::vector<double>& xs, double x) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : xs) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double empirical_quantile(std::vector<double> xs, double q) {
  SA_EXPECTS(!xs.empty());
  SA_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())) - 1.0);
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace sa
