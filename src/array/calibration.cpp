#include "sa/array/calibration.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

CalibrationTable::CalibrationTable(CVec corrections)
    : corrections_(std::move(corrections)) {
  SA_EXPECTS(!corrections_.empty());
}

CalibrationTable CalibrationTable::identity(std::size_t n) {
  SA_EXPECTS(n > 0);
  return CalibrationTable(CVec(n, cd{1.0, 0.0}));
}

void CalibrationTable::apply(CVec& snapshot) const {
  SA_EXPECTS(snapshot.size() == corrections_.size());
  for (std::size_t m = 0; m < snapshot.size(); ++m) {
    snapshot[m] *= corrections_[m];
  }
}

void CalibrationTable::apply(CMat& samples) const {
  SA_EXPECTS(samples.rows() == corrections_.size());
  for (std::size_t m = 0; m < samples.rows(); ++m) {
    apply_row(m, samples.raw() + m * samples.cols(), samples.cols());
  }
}

void CalibrationTable::apply_row(std::size_t m, cd* samples,
                                 std::size_t n) const {
  SA_EXPECTS(m < corrections_.size());
  const cd c = corrections_[m];
  for (std::size_t t = 0; t < n; ++t) samples[t] *= c;
}

std::vector<double> CalibrationTable::residual_phase(
    const ArrayImpairments& truth) const {
  SA_EXPECTS(truth.size() == corrections_.size());
  // After correction, chain m carries phase phi_m + arg(c_m); AoA only
  // sees differences, so subtract chain 0's residual.
  std::vector<double> out(corrections_.size());
  const double ref =
      truth.chain(0).phase_rad + std::arg(corrections_[0]);
  for (std::size_t m = 0; m < corrections_.size(); ++m) {
    const double resid =
        truth.chain(m).phase_rad + std::arg(corrections_[m]) - ref;
    out[m] = std::abs(wrap_pi(resid));
  }
  return out;
}

Calibrator::Calibrator(CalibratorConfig config) : config_(config) {
  SA_EXPECTS(config_.num_samples > 0);
}

CalibrationTable Calibrator::run(const ArrayImpairments& impairments,
                                 Rng& rng) const {
  const std::size_t n = impairments.size();
  const double noise_power = from_db(-config_.snr_db);  // unit-power tone
  CVec measured(n, cd{0.0, 0.0});
  // Average the received CW tone per chain. The injected tone is
  // identical on every chain (equal-length cables), so use 1+0j and let
  // the chain impairment rotate/scale it.
  for (std::size_t m = 0; m < n; ++m) {
    cd acc{0.0, 0.0};
    const cd chain = impairments.factor(m);
    for (std::size_t t = 0; t < config_.num_samples; ++t) {
      acc += chain + rng.complex_normal(noise_power);
    }
    measured[m] = acc / static_cast<double>(config_.num_samples);
  }
  // Correction: rotate every chain back to chain 0's phase and equalize
  // gain: c_m = measured_0 / measured_m.
  CVec corr(n);
  SA_ENSURES(std::abs(measured[0]) > 1e-9);
  for (std::size_t m = 0; m < n; ++m) {
    SA_ENSURES(std::abs(measured[m]) > 1e-9);
    corr[m] = measured[0] / measured[m];
  }
  return CalibrationTable(std::move(corr));
}

}  // namespace sa
