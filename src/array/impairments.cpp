#include "sa/array/impairments.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"

namespace sa {

ArrayImpairments ArrayImpairments::random(std::size_t n, Rng& rng,
                                          double gain_sigma) {
  SA_EXPECTS(n > 0);
  SA_EXPECTS(gain_sigma >= 0.0 && gain_sigma < 0.5);
  ArrayImpairments imp;
  imp.chains_.resize(n);
  for (auto& c : imp.chains_) {
    c.phase_rad = rng.uniform(0.0, kTwoPi);
    c.gain = std::exp(rng.normal(0.0, gain_sigma));
  }
  return imp;
}

ArrayImpairments ArrayImpairments::ideal(std::size_t n) {
  SA_EXPECTS(n > 0);
  ArrayImpairments imp;
  imp.chains_.resize(n);
  return imp;
}

const ChainImpairment& ArrayImpairments::chain(std::size_t m) const {
  SA_EXPECTS(m < chains_.size());
  return chains_[m];
}

cd ArrayImpairments::factor(std::size_t m) const {
  const ChainImpairment& c = chain(m);
  return cd{c.gain * std::cos(c.phase_rad), c.gain * std::sin(c.phase_rad)};
}

void ArrayImpairments::apply(CVec& snapshot) const {
  SA_EXPECTS(snapshot.size() == chains_.size());
  for (std::size_t m = 0; m < snapshot.size(); ++m) snapshot[m] *= factor(m);
}

void ArrayImpairments::apply(CMat& samples) const {
  SA_EXPECTS(samples.rows() == chains_.size());
  for (std::size_t m = 0; m < samples.rows(); ++m) {
    apply_row(m, samples.raw() + m * samples.cols(), samples.cols());
  }
}

void ArrayImpairments::apply_row(std::size_t m, cd* samples,
                                 std::size_t n) const {
  const cd f = factor(m);
  for (std::size_t t = 0; t < n; ++t) samples[t] *= f;
}

}  // namespace sa
