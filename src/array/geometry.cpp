#include "sa/array/geometry.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"

namespace sa {

ArrayGeometry::ArrayGeometry(ArrayKind kind, std::vector<Vec2> positions)
    : kind_(kind), positions_(std::move(positions)) {
  SA_EXPECTS(!positions_.empty());
}

ArrayGeometry ArrayGeometry::uniform_linear(std::size_t n, double spacing) {
  SA_EXPECTS(n >= 2);
  SA_EXPECTS(spacing > 0.0);
  std::vector<Vec2> pos(n);
  const double mid = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = Vec2{(static_cast<double>(i) - mid) * spacing, 0.0};
  }
  return ArrayGeometry(ArrayKind::kLinear, std::move(pos));
}

ArrayGeometry ArrayGeometry::uniform_circular(std::size_t n, double radius) {
  SA_EXPECTS(n >= 3);
  SA_EXPECTS(radius > 0.0);
  std::vector<Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    pos[i] = Vec2{radius * std::cos(phi), radius * std::sin(phi)};
  }
  return ArrayGeometry(ArrayKind::kCircular, std::move(pos));
}

ArrayGeometry ArrayGeometry::octagon(double side) {
  SA_EXPECTS(side > 0.0);
  // Circumradius of a regular octagon with side s: R = s / (2 sin(pi/8)).
  const double radius = side / (2.0 * std::sin(kPi / 8.0));
  auto geom = uniform_circular(8, radius);
  return geom;
}

ArrayGeometry ArrayGeometry::custom(std::vector<Vec2> positions) {
  return ArrayGeometry(ArrayKind::kArbitrary, std::move(positions));
}

double ArrayGeometry::aperture() const {
  double best = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    for (std::size_t j = i + 1; j < positions_.size(); ++j) {
      best = std::max(best, distance(positions_[i], positions_[j]));
    }
  }
  return best;
}

Vec2 ArrayGeometry::direction(double bearing_deg) const {
  const double rad = deg2rad(bearing_deg);
  if (kind_ == ArrayKind::kLinear) {
    // Theta measured from broadside (+y); the elements lie along x, so
    // adjacent-element phase difference is 2*pi*d*sin(theta)/lambda.
    return Vec2{std::sin(rad), std::cos(rad)};
  }
  return Vec2{std::cos(rad), std::sin(rad)};
}

CVec ArrayGeometry::steering_vector(double bearing_deg, double lambda_m) const {
  SA_EXPECTS(lambda_m > 0.0);
  const Vec2 u = direction(bearing_deg);
  CVec a(positions_.size());
  for (std::size_t m = 0; m < positions_.size(); ++m) {
    const double phase = kTwoPi * dot(positions_[m], u) / lambda_m;
    a[m] = cd{std::cos(phase), std::sin(phase)};
  }
  return a;
}

double ArrayGeometry::scan_min_deg() const {
  return kind_ == ArrayKind::kLinear ? -90.0 : 0.0;
}

double ArrayGeometry::scan_max_deg() const {
  return kind_ == ArrayKind::kLinear ? 90.0 : 360.0;
}

double world_to_array_bearing(const ArrayGeometry& geom, double world_deg,
                              double orientation_deg) {
  if (geom.kind() == ArrayKind::kLinear) {
    // Local-frame azimuth of the source direction.
    const double alpha = world_deg - orientation_deg;
    // Steering convention: u_local = (sin(theta), cos(theta)), so
    // theta = 90 - alpha; fold the back half-plane onto the front.
    double theta = wrap_deg180(90.0 - alpha);
    if (theta > 90.0) theta = 180.0 - theta;
    if (theta < -90.0) theta = -180.0 - theta;
    return theta;
  }
  return wrap_deg360(world_deg - orientation_deg);
}

std::vector<double> array_to_world_bearings(const ArrayGeometry& geom,
                                            double array_deg,
                                            double orientation_deg) {
  if (geom.kind() == ArrayKind::kLinear) {
    return {wrap_deg360(orientation_deg + 90.0 - array_deg),
            wrap_deg360(orientation_deg - 90.0 + array_deg)};
  }
  return {wrap_deg360(array_deg + orientation_deg)};
}

std::vector<Vec2> ArrayGeometry::world_positions(Vec2 origin,
                                                 double orientation_deg) const {
  const double rad = deg2rad(orientation_deg);
  std::vector<Vec2> out(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    out[i] = origin + positions_[i].rotated(rad);
  }
  return out;
}

}  // namespace sa
