#include "sa/sim/deployment.hpp"

#include <cstdlib>
#include <utility>

namespace sa {

namespace {

std::string policies_to_string(const std::vector<PolicyKind>& policies) {
  std::string out;
  for (const PolicyKind kind : policies) {
    if (!out.empty()) out += ',';
    out += to_string(kind);
  }
  return out;
}

std::optional<std::vector<PolicyKind>> policies_from_string(
    const std::string& list) {
  std::vector<PolicyKind> kinds;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const auto kind = policy_kind_from_string(name);
    if (!kind) return std::nullopt;
    kinds.push_back(*kind);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kinds.empty()) return std::nullopt;
  return kinds;
}

std::optional<std::size_t> parse_size(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::size_t>(v);
}

}  // namespace

CaptureHeader capture_header_for(const DeploymentSpec& spec) {
  CaptureHeader header;
  header.num_aps = static_cast<std::uint32_t>(spec.num_aps);
  header.seed = spec.seed;
  header.metadata.emplace_back("sa.deployment", "figure4-office");
  header.metadata.emplace_back("sa.antennas", std::to_string(spec.antennas));
  header.metadata.emplace_back("sa.estimator", to_string(spec.estimator));
  header.metadata.emplace_back("sa.subbands", std::to_string(spec.subbands));
  header.metadata.emplace_back("sa.band_fusion",
                               std::string(to_string(spec.band_fusion)));
  header.metadata.emplace_back("sa.policies",
                               policies_to_string(spec.policies));
  return header;
}

std::optional<DeploymentSpec> deployment_from_header(
    const CaptureHeader& header) {
  if (header.meta("sa.deployment") != std::optional<std::string>("figure4-office")) {
    return std::nullopt;
  }
  DeploymentSpec spec;
  spec.seed = header.seed;
  spec.num_aps = header.num_aps;
  if (spec.num_aps == 0) return std::nullopt;

  const auto antennas = header.meta("sa.antennas");
  const auto estimator = header.meta("sa.estimator");
  const auto subbands = header.meta("sa.subbands");
  const auto fusion = header.meta("sa.band_fusion");
  const auto policies = header.meta("sa.policies");
  if (!antennas || !estimator || !subbands || !fusion || !policies) {
    return std::nullopt;
  }
  const auto n_ant = parse_size(*antennas);
  if (!n_ant || *n_ant < 2 || *n_ant > 64) return std::nullopt;
  spec.antennas = *n_ant;
  const auto backend = aoa_backend_from_string(*estimator);
  if (!backend) return std::nullopt;
  spec.estimator = *backend;
  const auto n_sub = parse_size(*subbands);
  if (!n_sub || *n_sub == 0 || *n_sub > 64) return std::nullopt;
  spec.subbands = *n_sub;
  const auto bf = band_fusion_from_string(*fusion);
  if (!bf) return std::nullopt;
  spec.band_fusion = *bf;
  const auto kinds = policies_from_string(*policies);
  if (!kinds) return std::nullopt;
  spec.policies = *kinds;
  return spec;
}

std::string describe(const DeploymentSpec& spec) {
  std::string out = "seed=" + std::to_string(spec.seed);
  out += " aps=" + std::to_string(spec.num_aps);
  out += " antennas=" + std::to_string(spec.antennas);
  out += " estimator=";
  out += to_string(spec.estimator);
  out += " subbands=" + std::to_string(spec.subbands);
  out += " band-fusion=";
  out += to_string(spec.band_fusion);
  out += " policies=" + policies_to_string(spec.policies);
  return out;
}

BuiltDeployment build_deployment(const DeploymentSpec& spec, bool with_sim) {
  BuiltDeployment built;
  built.testbed = OfficeTestbed::figure4();

  // Draw-order contract (see the header comment): APs first, from
  // Rng(seed), in mounting-point order; the simulation — which consumes
  // a fork draw in its constructor — only afterwards.
  Rng rng(spec.seed);
  for (const Vec2& spot : built.testbed.ap_mounting_points(spec.num_aps)) {
    AccessPointConfig cfg;
    cfg.position = spot;
    cfg.estimator = spec.estimator;
    cfg.subbands = spec.subbands;
    cfg.band_fusion = spec.band_fusion;
    if (spec.antennas != 8) {
      cfg.geometry = ArrayGeometry::uniform_circular(spec.antennas, 0.06);
    }
    built.aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    built.ap_ptrs.push_back(built.aps.back().get());
  }
  if (with_sim) {
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 1e-5;
    built.sim =
        std::make_unique<UplinkSimulation>(built.testbed, ucfg, rng);
    for (const auto& ap : built.aps) built.sim->add_ap(ap->placement());
  }
  built.traffic_rng = rng.fork();

  built.engine.coordinator.fence_boundary = built.testbed.building_outline();
  built.engine.coordinator.min_aps_for_fence = 2;
  built.engine.coordinator.policies = spec.policies;
  // The ACL baseline allows exactly the testbed's legitimate clients —
  // which is why MAC spoofing subverts it (paper §1).
  AccessControlList acl;
  for (const auto& c : built.testbed.clients()) {
    acl.allow(MacAddress::from_index(c.id));
  }
  built.engine.coordinator.acl = std::move(acl);
  return built;
}

}  // namespace sa
