#include "sa/sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "sa/common/error.hpp"

namespace sa {

namespace {

/// Walking clients and the adaptive spoofer move on a coarse grid:
/// UplinkSimulation caches one traced link per exact transmitter
/// position, so quantizing bounds the cache while still crossing the
/// fence step by step.
constexpr double kPositionGrid = 0.25;

Vec2 quantize(Vec2 p) {
  return {std::round(p.x / kPositionGrid) * kPositionGrid,
          std::round(p.y / kPositionGrid) * kPositionGrid};
}

double exp_interval(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform(0.0, 1.0)) / rate;
}

bool high_resolution(AoaBackend backend) {
  return backend == AoaBackend::kRootMusic || backend == AoaBackend::kEsprit ||
         backend == AoaBackend::kCapon;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kOffice: return "office";
    case ScenarioKind::kMmpp: return "mmpp";
    case ScenarioKind::kFlashCrowd: return "flash-crowd";
    case ScenarioKind::kMobile: return "mobile";
    case ScenarioKind::kAdaptiveSpoof: return "adaptive-spoof";
    case ScenarioKind::kFlood: return "flood";
    case ScenarioKind::kChurn: return "churn";
    case ScenarioKind::kRoaming: return "roaming";
  }
  return "office";
}

std::optional<ScenarioKind> scenario_from_string(std::string_view name) {
  if (name == "office") return ScenarioKind::kOffice;
  if (name == "mmpp") return ScenarioKind::kMmpp;
  if (name == "flash-crowd" || name == "flashcrowd" || name == "flash_crowd") {
    return ScenarioKind::kFlashCrowd;
  }
  if (name == "mobile") return ScenarioKind::kMobile;
  if (name == "adaptive-spoof" || name == "adaptive_spoof" ||
      name == "adaptive") {
    return ScenarioKind::kAdaptiveSpoof;
  }
  if (name == "flood") return ScenarioKind::kFlood;
  if (name == "churn") return ScenarioKind::kChurn;
  if (name == "roaming") return ScenarioKind::kRoaming;
  return std::nullopt;
}

const char* scenario_names() {
  return "office, mmpp, flash-crowd, mobile, adaptive-spoof, flood, churn, "
         "roaming";
}

std::uint64_t roaming_idle_horizon_frames(const ScenarioConfig& config) {
  const double frames = 8.0 * config.roaming_dwell_s * config.arrival_rate;
  return static_cast<std::uint64_t>(std::ceil(std::max(frames, 1.0)));
}

ScenarioGenerator::ScenarioGenerator(const OfficeTestbed& testbed,
                                     ScenarioConfig config, Rng rng,
                                     AoaBackend estimator)
    : testbed_(testbed),
      config_(config),
      rng_(std::move(rng)),
      estimator_(estimator) {
  SA_EXPECTS(config_.arrival_rate > 0.0);
  SA_EXPECTS(config_.duration_s > 0.0);
  if (config_.kind == ScenarioKind::kMmpp) {
    SA_EXPECTS(config_.burst_multiplier >= 1.0);
    SA_EXPECTS(config_.calm_hold_s > 0.0 && config_.burst_hold_s > 0.0);
    state_until_ = exp_interval(rng_, 1.0 / config_.calm_hold_s);
  }
  if (config_.kind == ScenarioKind::kFlood) {
    SA_EXPECTS(config_.flood_rate > 0.0);
    flood_next_ =
        config_.flood_start_s + exp_interval(rng_, config_.flood_rate);
  }
  if (config_.kind == ScenarioKind::kMobile) {
    SA_EXPECTS(config_.mobile_clients >= 1);
    SA_EXPECTS(config_.mobile_cross_at > 0.0);
  }
  if (config_.kind == ScenarioKind::kChurn) {
    SA_EXPECTS(config_.churn_population >= 1);
    SA_EXPECTS(config_.churn_zipf_exponent > 0.0);
    SA_EXPECTS(config_.churn_rotate_per_s > 0.0);
    // Zipf weights 1/(rank+1)^s over the pool, accumulated into a CDF so
    // each draw is one uniform + one binary search.
    churn_cdf_.resize(config_.churn_population);
    double acc = 0.0;
    for (std::size_t r = 0; r < config_.churn_population; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1),
                            config_.churn_zipf_exponent);
      churn_cdf_[r] = acc;
    }
    for (double& c : churn_cdf_) c /= acc;
    // Pool MACs are minted from a monotonic counter offset past every
    // index the other scenarios use, so churn traffic never collides
    // with testbed client MACs.
    churn_mac_.resize(config_.churn_population);
    for (std::size_t r = 0; r < config_.churn_population; ++r) {
      churn_mac_[r] = 1000 + churn_next_mac_++;
    }
    churn_rotate_next_ = exp_interval(rng_, config_.churn_rotate_per_s);
  }
  if (config_.kind == ScenarioKind::kRoaming) {
    SA_EXPECTS(config_.roaming_sites >= 2);
    SA_EXPECTS(config_.roaming_walkers >= 1);
    SA_EXPECTS(config_.roaming_dwell_s > 0.0);
    SA_EXPECTS(config_.roaming_zipf_exponent >= 0.0);
    // Zipf site affinity: weight 1/(site+1)^s, so site 0 is the hot
    // spot everyone returns to; s = 0 degenerates to uniform.
    roam_cdf_.resize(config_.roaming_sites);
    double acc = 0.0;
    for (std::size_t s = 0; s < config_.roaming_sites; ++s) {
      acc += 1.0 / std::pow(static_cast<double>(s + 1),
                            config_.roaming_zipf_exponent);
      roam_cdf_[s] = acc;
    }
    for (double& c : roam_cdf_) c /= acc;
    // Walkers start spread round-robin across the fleet with staggered
    // first dwells, so moves don't synchronize.
    roam_site_.resize(config_.roaming_walkers);
    roam_until_.resize(config_.roaming_walkers);
    for (std::size_t w = 0; w < config_.roaming_walkers; ++w) {
      roam_site_[w] = static_cast<std::uint32_t>(w % config_.roaming_sites);
      roam_until_[w] = exp_interval(rng_, 1.0 / config_.roaming_dwell_s);
    }
  }
  spoof_pos_ = testbed_.client(config_.spoof_source_id).position;
  victim_pos_ = testbed_.client(config_.spoof_victim_id).position;
  ap_centroid_ = testbed_.ap_position();
}

double ScenarioGenerator::current_rate() {
  switch (config_.kind) {
    case ScenarioKind::kMmpp:
      return bursting_ ? config_.arrival_rate * config_.burst_multiplier
                       : config_.arrival_rate;
    case ScenarioKind::kFlashCrowd:
      if (now_ >= config_.flash_start_s &&
          now_ < config_.flash_start_s + config_.flash_len_s) {
        return config_.arrival_rate * config_.flash_multiplier;
      }
      return config_.arrival_rate;
    default:
      return config_.arrival_rate;
  }
}

std::optional<TrafficEvent> ScenarioGenerator::next() {
  const double prev = now_;
  // Advance the base arrival process over its piecewise-constant rate:
  // draw at the current rate, and when the draw crosses a rate boundary
  // (an MMPP state switch, a flash-crowd window edge), restart the draw
  // from the boundary at the new rate — the standard thinning-free way
  // to sample an inhomogeneous piecewise-constant Poisson process.
  double t = now_;
  for (;;) {
    const double rate = current_rate();
    double boundary = config_.duration_s;
    if (config_.kind == ScenarioKind::kMmpp) {
      boundary = std::min(boundary, state_until_);
    } else if (config_.kind == ScenarioKind::kFlashCrowd) {
      const double start = config_.flash_start_s;
      const double end = config_.flash_start_s + config_.flash_len_s;
      if (t < start) {
        boundary = std::min(boundary, start);
      } else if (t < end) {
        boundary = std::min(boundary, end);
      }
    }
    const double dt = exp_interval(rng_, rate);
    if (t + dt <= boundary) {
      t += dt;
      break;
    }
    if (boundary >= config_.duration_s) {
      t = config_.duration_s;  // no arrival before the horizon
      break;
    }
    t = boundary;
    if (config_.kind == ScenarioKind::kMmpp && t >= state_until_) {
      bursting_ = !bursting_;
      const double hold =
          bursting_ ? config_.burst_hold_s : config_.calm_hold_s;
      state_until_ = t + exp_interval(rng_, 1.0 / hold);
    }
    now_ = t;  // current_rate() looks at now_ for flash windows
  }

  // The flooding attacker is an independent Poisson process inside its
  // window. When its next arrival precedes the base process's, emit it
  // and re-draw the base arrival next call — memoryless, so the base
  // process's statistics are unchanged.
  if (config_.kind == ScenarioKind::kFlood && flood_next_ <= t &&
      flood_next_ < config_.flood_start_s + config_.flood_len_s &&
      flood_next_ < config_.duration_s) {
    const double ft = flood_next_;
    flood_next_ = ft + exp_interval(rng_, config_.flood_rate);
    now_ = ft;
    TrafficEvent ev;
    ev.kind = TrafficEvent::Kind::kFlood;
    ev.time_s = ft;
    ev.dt_s = ft - prev;
    const auto& c = testbed_.client(config_.flood_client_id);
    ev.from = c.position;
    ev.mac = MacAddress::from_index(c.id);
    return ev;
  }

  if (t >= config_.duration_s) return std::nullopt;
  now_ = t;

  switch (config_.kind) {
    case ScenarioKind::kMobile: {
      TrafficEvent ev = make_mobile_event(t);
      ev.dt_s = t - prev;
      return ev;
    }
    case ScenarioKind::kAdaptiveSpoof: {
      TrafficEvent ev = make_adaptive_event(t);
      ev.dt_s = t - prev;
      return ev;
    }
    case ScenarioKind::kChurn: {
      TrafficEvent ev = make_churn_event(t);
      ev.dt_s = t - prev;
      return ev;
    }
    case ScenarioKind::kRoaming: {
      TrafficEvent ev = make_roaming_event(t);
      ev.dt_s = t - prev;
      return ev;
    }
    default: {
      TrafficEvent ev = make_base_event(t);
      ev.dt_s = t - prev;
      return ev;
    }
  }
}

TrafficEvent ScenarioGenerator::make_base_event(double t) {
  // The classic streaming mix: 80% legitimate, 10% insider spoofing,
  // 10% off-site amplified transmitter.
  TrafficEvent ev;
  ev.time_s = t;
  const double pick = rng_.uniform(0.0, 1.0);
  if (pick < 0.8) {
    const auto& clients = testbed_.clients();
    const auto& c = clients[std::min(
        clients.size() - 1,
        static_cast<std::size_t>(
            rng_.uniform(0.0, static_cast<double>(clients.size()))))];
    ev.kind = TrafficEvent::Kind::kLegit;
    ev.from = c.position;
    ev.mac = MacAddress::from_index(c.id);
  } else if (pick < 0.9) {
    ev.kind = TrafficEvent::Kind::kSpoof;
    ev.from = testbed_.client(config_.spoof_source_id).position;
    ev.mac = MacAddress::from_index(config_.spoof_victim_id);
  } else {
    ev.kind = TrafficEvent::Kind::kOffsite;
    ev.from = testbed_.outdoor_positions()[0];
    ev.mac = MacAddress::from_index(200);
    TxPattern amp;
    amp.tx_power_db = 15.0;
    ev.pattern = amp;
  }
  return ev;
}

TrafficEvent ScenarioGenerator::make_mobile_event(double t) {
  // Half the traffic is walkers, half the ordinary legitimate mix; a
  // walker moves along a straight quantized path from its desk to an
  // outdoor spot, reaching it at 2 * mobile_cross_at of the duration —
  // so it crosses the fence boundary mid-stream, while still sending.
  TrafficEvent ev;
  ev.time_s = t;
  if (rng_.bernoulli(0.5)) {
    const std::size_t n = config_.mobile_clients;
    const std::size_t w = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto& c = testbed_.client(static_cast<int>(w) + 1);
    const auto& outs = testbed_.outdoor_positions();
    const Vec2 dest = outs[w % outs.size()];
    const double frac = std::min(
        1.0, (t / config_.duration_s) / (2.0 * config_.mobile_cross_at));
    ev.kind = TrafficEvent::Kind::kLegit;
    ev.from = quantize(c.position + (dest - c.position) * frac);
    ev.mac = MacAddress::from_index(c.id);
    return ev;
  }
  const auto& clients = testbed_.clients();
  const auto& c = clients[std::min(
      clients.size() - 1,
      static_cast<std::size_t>(
          rng_.uniform(0.0, static_cast<double>(clients.size()))))];
  ev.kind = TrafficEvent::Kind::kLegit;
  ev.from = c.position;
  ev.mac = MacAddress::from_index(c.id);
  return ev;
}

TrafficEvent ScenarioGenerator::make_adaptive_event(double t) {
  TrafficEvent ev;
  ev.time_s = t;
  if (rng_.uniform(0.0, 1.0) < 0.6) {
    const auto& clients = testbed_.clients();
    const auto& c = clients[std::min(
        clients.size() - 1,
        static_cast<std::size_t>(
            rng_.uniform(0.0, static_cast<double>(clients.size()))))];
    ev.kind = TrafficEvent::Kind::kLegit;
    ev.from = c.position;
    ev.mac = MacAddress::from_index(c.id);
    return ev;
  }
  // The insider forges the victim's MAC, and adapts open-loop: every
  // adapt_every forged frames it steps 20% of the remaining distance
  // toward the victim's desk (shrinking the AoA gap the spoof detector
  // keys on); against high-resolution estimators it additionally aims a
  // directional antenna at the AP, concentrating energy on the direct
  // path like the paper's TJ-Maxx attacker.
  ++spoof_sent_;
  if (config_.adapt_every > 0 && spoof_sent_ % config_.adapt_every == 0) {
    spoof_pos_ = quantize(spoof_pos_ + (victim_pos_ - spoof_pos_) * 0.2);
  }
  ev.kind = TrafficEvent::Kind::kSpoof;
  ev.from = spoof_pos_;
  ev.mac = MacAddress::from_index(config_.spoof_victim_id);
  if (high_resolution(estimator_)) {
    TxPattern dir;
    const Vec2 d = ap_centroid_ - spoof_pos_;
    dir.aim_azimuth_deg = std::atan2(d.y, d.x) * 180.0 / 3.14159265358979;
    dir.beamwidth_deg = 40.0;
    dir.boresight_gain_db = 6.0;
    ev.pattern = dir;
  }
  return ev;
}

TrafficEvent ScenarioGenerator::make_churn_event(double t) {
  // Catch the rotation process up to t: each rotation retires one
  // uniformly-chosen pool slot and mints a fresh MAC for it, so the
  // population drifts while its size stays fixed. The retired MAC is
  // never re-contacted — downstream, its tracked state can only leave
  // via LRU eviction or idle expiry, which is the point.
  while (churn_rotate_next_ <= t) {
    const std::size_t slot = std::min(
        churn_mac_.size() - 1,
        static_cast<std::size_t>(
            rng_.uniform(0.0, static_cast<double>(churn_mac_.size()))));
    churn_mac_[slot] = 1000 + churn_next_mac_++;
    churn_rotate_next_ += exp_interval(rng_, config_.churn_rotate_per_s);
  }
  // Zipf re-contact over pool ranks: rank 0 is the hot talker, the tail
  // is nearly cold — so the engine's LRU sees a stable hot set riding on
  // a stream of one-shot strangers.
  const double u = rng_.uniform(0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::upper_bound(churn_cdf_.begin(), churn_cdf_.end(), u) -
      churn_cdf_.begin());
  const std::size_t slot = std::min(rank, churn_mac_.size() - 1);
  const auto& clients = testbed_.clients();
  TrafficEvent ev;
  ev.kind = TrafficEvent::Kind::kLegit;
  ev.time_s = t;
  ev.from = clients[slot % clients.size()].position;
  ev.mac = MacAddress::from_index(static_cast<int>(churn_mac_[slot]));
  return ev;
}

TrafficEvent ScenarioGenerator::make_roaming_event(double t) {
  // Pick the transmitting walker uniformly, then catch its movement
  // process up to t: every elapsed dwell re-draws the site from the
  // Zipf affinity distribution. Only the site occupied at transmission
  // time matters downstream — intermediate silent hops collapse into
  // one site_changed edge, which is how a real fleet would see it (a
  // client that roamed while idle reappears somewhere else).
  const std::size_t w = std::min(
      roam_site_.size() - 1,
      static_cast<std::size_t>(
          rng_.uniform(0.0, static_cast<double>(roam_site_.size()))));
  const std::uint32_t before = roam_site_[w];
  while (roam_until_[w] <= t) {
    const double u = rng_.uniform(0.0, 1.0);
    const std::size_t pick = static_cast<std::size_t>(
        std::upper_bound(roam_cdf_.begin(), roam_cdf_.end(), u) -
        roam_cdf_.begin());
    roam_site_[w] =
        static_cast<std::uint32_t>(std::min(pick, roam_cdf_.size() - 1));
    roam_until_[w] += exp_interval(rng_, 1.0 / config_.roaming_dwell_s);
  }
  const auto& c = testbed_.client(static_cast<int>(w) + 1);
  TrafficEvent ev;
  ev.kind = TrafficEvent::Kind::kLegit;
  ev.time_s = t;
  ev.from = c.position;
  ev.mac = MacAddress::from_index(c.id);
  ev.site = roam_site_[w];
  ev.site_changed = roam_site_[w] != before;
  return ev;
}

std::string ScenarioGenerator::describe() const {
  std::string out = "scenario=";
  out += to_string(config_.kind);
  out += " arrival-rate=" + fmt(config_.arrival_rate);
  out += " duration=" + fmt(config_.duration_s);
  switch (config_.kind) {
    case ScenarioKind::kMmpp:
      out += " burst-multiplier=" + fmt(config_.burst_multiplier);
      out += " calm-hold=" + fmt(config_.calm_hold_s);
      out += " burst-hold=" + fmt(config_.burst_hold_s);
      break;
    case ScenarioKind::kFlashCrowd:
      out += " flash-start=" + fmt(config_.flash_start_s);
      out += " flash-len=" + fmt(config_.flash_len_s);
      out += " flash-multiplier=" + fmt(config_.flash_multiplier);
      break;
    case ScenarioKind::kMobile:
      out += " mobile-clients=" + std::to_string(config_.mobile_clients);
      out += " mobile-cross-at=" + fmt(config_.mobile_cross_at);
      break;
    case ScenarioKind::kAdaptiveSpoof:
      out += " adapt-every=" + std::to_string(config_.adapt_every);
      out += " victim=" + std::to_string(config_.spoof_victim_id);
      out += " source=" + std::to_string(config_.spoof_source_id);
      break;
    case ScenarioKind::kFlood:
      out += " flood-rate=" + fmt(config_.flood_rate);
      out += " flood-start=" + fmt(config_.flood_start_s);
      out += " flood-len=" + fmt(config_.flood_len_s);
      out += " flood-client=" + std::to_string(config_.flood_client_id);
      break;
    case ScenarioKind::kChurn:
      out += " churn-population=" + std::to_string(config_.churn_population);
      out += " churn-zipf=" + fmt(config_.churn_zipf_exponent);
      out += " churn-rotate=" + fmt(config_.churn_rotate_per_s);
      break;
    case ScenarioKind::kRoaming:
      out += " roaming-sites=" + std::to_string(config_.roaming_sites);
      out += " roaming-walkers=" + std::to_string(config_.roaming_walkers);
      out += " roaming-dwell=" + fmt(config_.roaming_dwell_s);
      out += " roaming-zipf=" + fmt(config_.roaming_zipf_exponent);
      if (!config_.roaming_fault_plan.empty()) {
        out += " roaming-fault-plan=" + config_.roaming_fault_plan;
      }
      break;
    case ScenarioKind::kOffice:
      break;
  }
  return out;
}

}  // namespace sa
