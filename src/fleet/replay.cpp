#include "sa/fleet/replay.hpp"

#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "sa/fleet/coordinator.hpp"

namespace sa {

namespace {

std::optional<std::size_t> parse_size(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::size_t>(v);
}

FleetReplayResult fail(FleetReplayResult result, std::string error) {
  result.ok = false;
  result.error = std::move(error);
  return result;
}

FleetReplayResult run(CaptureReader reader_value,
                      std::size_t threads_per_site) {
  FleetReplayResult result;
  CaptureReader* reader = &reader_value;
  if (!reader->header()) return fail(result, "malformed capture header");
  const CaptureHeader& header = *reader->header();
  if (header.version < kSacpVersionFleet) {
    return fail(result, "not a fleet capture (version " +
                            std::to_string(header.version) + ")");
  }
  const auto spec = fleet_from_header(header);
  if (!spec) return fail(result, "header does not describe a fleet");

  FleetConfig config;
  config.spec = *spec;
  config.threads_per_site = threads_per_site;
  config.with_sim = false;
  // The recording driver stamps the idle horizon it actually ran with;
  // replay must apply the same horizon or tracker expiry timing — and
  // hence decisions — diverge.
  if (const auto idle = header.meta("sa.fleet.spoof_idle")) {
    const auto frames = parse_size(*idle);
    if (!frames) return fail(result, "bad sa.fleet.spoof_idle");
    config.spoof_idle_frames = *frames;
  }
  // Version 3: rebuild the recorded faulty channel — the plan string is
  // the whole channel state, so the replayed run loses, duplicates and
  // corrupts exactly the datagrams the original did.
  if (const auto plan_text = header.meta("sa.fleet.fault_plan")) {
    const auto plan = FaultPlan::parse(*plan_text);
    if (!plan) return fail(result, "bad sa.fleet.fault_plan");
    config.fault_plan = *plan;
  }
  FleetCoordinator fleet(config);
  result.sites = fleet.num_sites();
  // The migration each MAC most recently replayed, for kTransport
  // verdict checks (the record always follows its kAssoc).
  std::map<MacAddress, HandoffResult> last_handoff;

  // Recorded per-site decision tracks, in each site's sequence order.
  std::map<std::uint32_t, std::vector<ByteStream>> expected;
  bool end_seen = false;
  while (auto rec = reader->next()) {
    switch (rec->type) {
      case RecordType::kChunk: {
        if (!rec->chunk) return fail(result, "undecodable chunk record");
        if (rec->chunk->ap >= fleet.total_aps()) {
          return fail(result, "chunk AP out of range");
        }
        fleet.submit_global(rec->chunk->ap, std::move(rec->chunk->samples));
        ++result.chunks_submitted;
        break;
      }
      case RecordType::kDecision:
        return fail(result, "plain decision record in fleet capture");
      case RecordType::kSiteDecision: {
        if (!rec->site_decision) {
          return fail(result, "undecodable site-decision record");
        }
        expected[rec->site_decision->site].push_back(std::move(rec->payload));
        break;
      }
      case RecordType::kAssoc: {
        if (!rec->assoc) return fail(result, "undecodable assoc record");
        const MacAddress mac(rec->assoc->mac);
        auto hr = fleet.notify_association(mac, rec->assoc->site);
        if (hr.outcome != FleetImportOutcome::kApplied) {
          return fail(result, std::string("replayed handoff rejected: ") +
                                  to_string(hr.outcome));
        }
        if (hr.generation != rec->assoc->generation) {
          return fail(result,
                      "handoff generation diverged: recorded " +
                          std::to_string(rec->assoc->generation) + ", got " +
                          std::to_string(hr.generation));
        }
        ++result.assocs_replayed;
        hr.wire.clear();  // keep only the verdict fields
        last_handoff[mac] = std::move(hr);
        break;
      }
      case RecordType::kTransport: {
        if (!rec->transport) {
          return fail(result, "undecodable transport record");
        }
        const MacAddress mac(rec->transport->mac);
        const auto it = last_handoff.find(mac);
        if (it == last_handoff.end()) {
          return fail(result, "transport record without a prior handoff");
        }
        const HandoffResult& hr = it->second;
        if (hr.generation != rec->transport->generation ||
            static_cast<std::uint32_t>(hr.transport) !=
                rec->transport->outcome ||
            hr.attempts != rec->transport->attempts) {
          return fail(result,
                      "transport verdict diverged for generation " +
                          std::to_string(rec->transport->generation) +
                          ": recorded " + std::to_string(
                              rec->transport->outcome) +
                          "/" + std::to_string(rec->transport->attempts) +
                          " attempts, got " +
                          std::to_string(
                              static_cast<std::uint32_t>(hr.transport)) +
                          "/" + std::to_string(hr.attempts));
        }
        ++result.transports_checked;
        break;
      }
      case RecordType::kDrain:
        fleet.drain_all();
        ++result.drains_run;
        break;
      case RecordType::kEnd:
        end_seen = true;
        break;
    }
  }
  if (!reader->error().empty()) return fail(result, reader->error());
  if (!end_seen) return fail(result, "capture not cleanly closed (no kEnd)");

  // Quiesce without a flush pass: the recording ended post-drain, so an
  // extra flush here would add rounds the recording never ran.
  for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
    fleet.session(s).wait_idle();
  }

  for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
    const auto& actual = fleet.decisions(s);
    const auto it = expected.find(static_cast<std::uint32_t>(s));
    const std::size_t want = it == expected.end() ? 0 : it->second.size();
    if (actual.size() != want) {
      return fail(result, "site " + std::to_string(s) + ": replay emitted " +
                              std::to_string(actual.size()) +
                              " decisions, capture has " +
                              std::to_string(want));
    }
    for (std::size_t i = 0; i < want; ++i) {
      const ByteStream got = encode_site_decision(
          static_cast<std::uint32_t>(s), actual[i].sequence,
          actual[i].absolute_start, actual[i].decision);
      if (got != it->second[i]) {
        return fail(result, "site " + std::to_string(s) + " decision " +
                                std::to_string(i) +
                                " diverged from the recorded bytes");
      }
      ++result.decisions_checked;
    }
  }
  fleet.close();
  result.ok = true;
  return result;
}

}  // namespace

FleetReplayResult replay_fleet_capture(const std::string& path,
                                       std::size_t threads_per_site) {
  auto reader = CaptureReader::from_file(path);
  if (!reader) {
    FleetReplayResult result;
    result.error = "cannot read " + path;
    return result;
  }
  return replay_fleet_capture(reader->bytes(), threads_per_site);
}

FleetReplayResult replay_fleet_capture(ByteStream data,
                                       std::size_t threads_per_site) {
  // Total over untrusted input: the fuzz loop feeds mutated captures
  // through here, so structural surprises must surface as errors.
  try {
    return run(CaptureReader(std::move(data)), threads_per_site);
  } catch (const std::exception& e) {
    FleetReplayResult result;
    result.error = e.what();
    return result;
  }
}

}  // namespace sa
