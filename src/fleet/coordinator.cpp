#include "sa/fleet/coordinator.hpp"

#include <cstdlib>
#include <functional>
#include <utility>

#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"
#include "sa/sim/scenario.hpp"

namespace sa {

namespace {

std::optional<std::size_t> parse_size(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::size_t>(v);
}

}  // namespace

DeploymentSpec site_spec(const FleetSpec& spec, std::size_t index) {
  DeploymentSpec site = spec.site;
  site.seed = spec.site.seed +
              static_cast<std::uint64_t>(index) * spec.site_seed_stride;
  return site;
}

CaptureHeader fleet_header_for(const FleetSpec& spec) {
  CaptureHeader header = capture_header_for(spec.site);
  header.version = kSacpVersionFleet;
  header.num_aps =
      static_cast<std::uint32_t>(spec.num_sites * spec.site.num_aps);
  header.metadata.emplace_back("sa.fleet.sites",
                               std::to_string(spec.num_sites));
  header.metadata.emplace_back("sa.fleet.seed_stride",
                               std::to_string(spec.site_seed_stride));
  return header;
}

std::optional<FleetSpec> fleet_from_header(const CaptureHeader& header) {
  const auto sites_meta = header.meta("sa.fleet.sites");
  const auto stride_meta = header.meta("sa.fleet.seed_stride");
  if (!sites_meta || !stride_meta) return std::nullopt;
  const auto sites = parse_size(*sites_meta);
  const auto stride = parse_size(*stride_meta);
  if (!sites || *sites == 0 || !stride) return std::nullopt;
  if (header.num_aps == 0 || header.num_aps % *sites != 0) return std::nullopt;
  // The per-site deployment keys round-trip through the single-site
  // parser with num_aps scaled down to one site's share.
  CaptureHeader per_site = header;
  per_site.num_aps = static_cast<std::uint32_t>(header.num_aps / *sites);
  const auto site = deployment_from_header(per_site);
  if (!site) return std::nullopt;
  FleetSpec spec;
  spec.site = *site;
  spec.num_sites = *sites;
  spec.site_seed_stride = *stride;
  return spec;
}

const char* to_string(FleetImportOutcome outcome) {
  switch (outcome) {
    case FleetImportOutcome::kApplied: return "applied";
    case FleetImportOutcome::kStale: return "stale";
    case FleetImportOutcome::kMalformed: return "malformed";
    case FleetImportOutcome::kBadSite: return "bad-site";
  }
  return "malformed";
}

const char* to_string(HandoffOutcome outcome) {
  switch (outcome) {
    case HandoffOutcome::kDelivered: return "delivered";
    case HandoffOutcome::kColdStart: return "cold-start";
  }
  return "delivered";
}

FleetCoordinator::FleetCoordinator(FleetConfig config)
    : config_(std::move(config)) {
  SA_EXPECTS(config_.spec.num_sites >= 1);
  SA_EXPECTS(config_.spec.site.num_aps >= 1);
  if (config_.spoof_idle_frames) {
    idle_frames_ = *config_.spoof_idle_frames;
  } else {
    // Fleet default: idle expiry ON, horizon from the roaming dwell
    // distribution (see roaming_idle_horizon_frames).
    ScenarioConfig roaming;
    roaming.kind = ScenarioKind::kRoaming;
    idle_frames_ =
        static_cast<std::size_t>(roaming_idle_horizon_frames(roaming));
  }
  sites_.reserve(config_.spec.num_sites);
  for (std::size_t i = 0; i < config_.spec.num_sites; ++i) {
    sites_.emplace_back();
    Site& site = sites_.back();
    site.deployment = std::make_unique<BuiltDeployment>(
        build_deployment(site_spec(config_.spec, i), config_.with_sim));
    site.mu = std::make_unique<std::mutex>();
    EngineConfig engine = site.deployment->engine;
    engine.num_threads = config_.threads_per_site;
    engine.coordinator.spoof_idle_frames = idle_frames_;
    engine.capture = config_.capture;
    engine.capture_ap_base =
        static_cast<std::uint32_t>(i * config_.spec.site.num_aps);
    engine.capture_site = static_cast<std::uint32_t>(i);
    engine.capture_drains = false;  // drain_all records the fleet boundary
    SessionConfig scfg;
    scfg.engine = std::move(engine);
    // sites_ was reserved above, so the decisions vector never moves.
    std::vector<EngineDecision>* out = &site.decisions;
    site.session = std::make_unique<EngineSession>(
        std::move(scfg), site.deployment->ap_ptrs,
        [out](const EngineDecision& d) { out->push_back(d); });
  }

  // Transport stack: loopback at the bottom; the lossy decorator only
  // when a plan is active, so the default path stays a direct call.
  FleetTransport* top = &loopback_;
  if (config_.fault_plan.active()) {
    faulty_ = std::make_unique<FaultyTransport>(loopback_, config_.fault_plan);
    top = faulty_.get();
  }
  link_ = std::make_unique<ReliableLink>(*top, config_.link);
  link_->set_import([this](const ByteStream& inner) { apply_wire(inner); });
}

FleetCoordinator::~FleetCoordinator() = default;

void FleetCoordinator::submit(std::uint32_t site, std::size_t local_ap,
                              CMat chunk) {
  SA_EXPECTS(site < sites_.size());
  SA_EXPECTS(local_ap < aps_per_site());
  sites_[site].session->submit(local_ap, std::move(chunk));
}

void FleetCoordinator::submit_global(std::uint32_t global_ap, CMat chunk) {
  SA_EXPECTS(global_ap < total_aps());
  const std::uint32_t per = static_cast<std::uint32_t>(aps_per_site());
  submit(global_ap / per, global_ap % per, std::move(chunk));
}

void FleetCoordinator::submit_round(std::uint32_t site,
                                    std::vector<CMat> chunks) {
  SA_EXPECTS(site < sites_.size());
  sites_[site].session->submit_round(std::move(chunks));
}

std::mutex& FleetCoordinator::stripe_for(const MacAddress& mac) {
  return stripes_[std::hash<MacAddress>{}(mac) % stripes_.size()];
}

HandoffResult FleetCoordinator::notify_association(const MacAddress& mac,
                                                   std::uint32_t dest_site) {
  std::lock_guard<std::mutex> stripe(stripe_for(mac));
  HandoffResult result;
  result.dest_site = dest_site;
  {
    std::lock_guard<std::mutex> st(state_mu_);
    ++stats_.associations;
    if (dest_site >= sites_.size()) {
      ++stats_.handoffs_bad_site;
      result.outcome = FleetImportOutcome::kBadSite;
      return result;
    }
    const Home* known = home_.find(mac);
    if (known == nullptr) {
      // First sighting: home the client here. Nothing to move.
      home_.get_or_emplace(mac, Home{dest_site, 1});
      refresh_home_footprint();
      record_assoc(dest_site, 1, mac);
      result.source_site = dest_site;
      result.generation = 1;
      return result;
    }
    result.source_site = known->site;
    result.generation = known->generation;
    if (known->site == dest_site) return result;  // already home: no-op
  }

  // Cross-site migration. Quiesce both dataplanes (wait_idle: every
  // formable round decided, no flush pass — receiver state untouched),
  // export, then ship under the reliability layer. The stripe lock
  // keeps this MAC's generation stable across the whole sequence.
  const std::uint32_t source_site = result.source_site;
  const std::uint64_t next_gen = result.generation + 1;
  EngineSession& source = *sites_[source_site].session;
  {
    std::lock_guard<std::mutex> sm(*sites_[source_site].mu);
    source.wait_idle();
  }
  {
    std::lock_guard<std::mutex> dm(*sites_[dest_site].mu);
    sites_[dest_site].session->wait_idle();
  }
  FleetClientState msg;
  msg.mac = mac;
  msg.generation = next_gen;
  msg.source_site = source_site;
  msg.dest_site = dest_site;
  {
    std::lock_guard<std::mutex> sm(*sites_[source_site].mu);
    msg.state = source.export_client_state(mac);
  }
  result.wire = encode_client_state(msg);
  result.generation = next_gen;

  ReliableLink::SendReport report;
  {
    std::lock_guard<std::mutex> tm(transport_mu_);
    report = link_->send_reliable(result.wire);
    const ReliableLinkStats& ls = link_->stats();
    std::lock_guard<std::mutex> st(state_mu_);
    stats_.retries = ls.retransmits;
    stats_.timeouts = ls.timeouts;
    stats_.duplicates_suppressed = ls.duplicates_suppressed;
    stats_.corrupt_dropped = ls.corrupt_dropped;
    stats_.stale_acks = ls.stale_acks;
  }
  result.attempts = report.attempts;
  result.migrated = true;
  result.outcome = FleetImportOutcome::kApplied;
  if (report.acked) {
    result.transport = HandoffOutcome::kDelivered;
  } else {
    // Cold start: the export never arrived (or its ack never came
    // back). The destination admits the client fresh — empty tracker,
    // ACL re-checked by the policy chain on the next frame, rate window
    // restarted — and the home map advances to next_gen so any copy of
    // this export still sitting in the channel is stale on arrival.
    result.transport = HandoffOutcome::kColdStart;
    std::lock_guard<std::mutex> st(state_mu_);
    ++stats_.cold_starts;
    const Home* now_home = home_.find(mac);
    if (now_home == nullptr || now_home->generation < next_gen) {
      // The data frame never imported (if it had, the generation would
      // already be next_gen — only this stripe-held call can advance
      // this MAC). Claim the home; the import path's kAssoc never
      // fired, so record it here.
      Home* home = home_.get_or_emplace(mac, Home{}).value;
      home->site = dest_site;
      home->generation = next_gen;
      refresh_home_footprint();
      record_assoc(dest_site, next_gen, mac);
    }
  }
  // Either way the client has left the source (keeping its ACL entry,
  // so late frames are judged by signature — not membership).
  {
    std::lock_guard<std::mutex> sm(*sites_[source_site].mu);
    source.forget_client(mac);
  }
  record_transport(mac, next_gen, result.transport, result.attempts);
  return result;
}

FleetImportOutcome FleetCoordinator::apply_handoff(const ByteStream& wire) {
  return apply_wire(wire);
}

FleetImportOutcome FleetCoordinator::apply_wire(const ByteStream& wire) {
  const auto msg = decode_client_state(wire);
  std::lock_guard<std::mutex> st(state_mu_);
  if (!msg) {
    ++stats_.handoffs_malformed;
    return FleetImportOutcome::kMalformed;
  }
  if (msg->dest_site >= sites_.size()) {
    ++stats_.handoffs_bad_site;
    return FleetImportOutcome::kBadSite;
  }
  const Home* known = home_.find(msg->mac);
  if (known != nullptr && msg->generation <= known->generation) {
    ++stats_.handoffs_stale;
    return FleetImportOutcome::kStale;
  }
  {
    std::lock_guard<std::mutex> dm(*sites_[msg->dest_site].mu);
    sites_[msg->dest_site].session->import_client_state(msg->mac, msg->state);
  }
  Home* home = home_.get_or_emplace(msg->mac, Home{}).value;
  home->site = msg->dest_site;
  home->generation = msg->generation;
  refresh_home_footprint();
  ++stats_.handoffs_applied;
  record_assoc(msg->dest_site, msg->generation, msg->mac);
  return FleetImportOutcome::kApplied;
}

void FleetCoordinator::drain_all() {
  for (Site& site : sites_) site.session->drain();
  {
    std::lock_guard<std::mutex> st(state_mu_);
    ++stats_.drains;
  }
  if (config_.capture != nullptr && !config_.capture->closed()) {
    config_.capture->record_drain();
  }
}

void FleetCoordinator::close() {
  if (closed_) return;
  for (Site& site : sites_) site.session->close();
  closed_ = true;
}

std::size_t FleetCoordinator::total_decisions() const {
  std::size_t n = 0;
  for (const Site& site : sites_) n += site.decisions.size();
  return n;
}

std::optional<std::uint32_t> FleetCoordinator::home_site(
    const MacAddress& mac) const {
  std::lock_guard<std::mutex> st(state_mu_);
  const Home* home = home_.find(mac);
  if (home == nullptr) return std::nullopt;
  return home->site;
}

std::optional<std::uint64_t> FleetCoordinator::generation_of(
    const MacAddress& mac) const {
  std::lock_guard<std::mutex> st(state_mu_);
  const Home* home = home_.find(mac);
  if (home == nullptr) return std::nullopt;
  return home->generation;
}

FleetStats FleetCoordinator::stats() const {
  std::lock_guard<std::mutex> st(state_mu_);
  return stats_;
}

TransportStats FleetCoordinator::transport_stats() const {
  if (!faulty_) return TransportStats{};
  return faulty_->stats();
}

void FleetCoordinator::refresh_home_footprint() {
  stats_.home_map_bytes = home_.memory_bytes();
  stats_.home_clients = home_.size();
}

void FleetCoordinator::record_assoc(std::uint32_t site,
                                    std::uint64_t generation,
                                    const MacAddress& mac) {
  if (config_.capture == nullptr || config_.capture->closed()) return;
  AssocRecord assoc;
  assoc.site = site;
  assoc.generation = generation;
  assoc.mac = mac.octets();
  config_.capture->record_assoc(assoc);
}

void FleetCoordinator::record_transport(const MacAddress& mac,
                                        std::uint64_t generation,
                                        HandoffOutcome outcome,
                                        std::uint32_t attempts) {
  // Only lossy runs carry transport verdicts (they are what makes the
  // capture version 3); the zero-fault capture stays byte-identical to
  // the pre-transport format.
  if (!config_.fault_plan.active()) return;
  if (config_.capture == nullptr || config_.capture->closed()) return;
  TransportRecord rec;
  rec.mac = mac.octets();
  rec.generation = generation;
  rec.outcome = static_cast<std::uint32_t>(outcome);
  rec.attempts = attempts;
  config_.capture->record_transport(rec);
}

}  // namespace sa
