#include "sa/fleet/wire.hpp"

#include "sa/signature/serialize.hpp"

namespace sa {

namespace {

constexpr std::uint32_t kFlagTracker = 1u << 0;
constexpr std::uint32_t kFlagAclPresent = 1u << 1;
constexpr std::uint32_t kFlagAclAllowed = 1u << 2;
constexpr std::uint32_t kFlagRate = 1u << 3;
constexpr std::uint32_t kKnownFlags =
    kFlagTracker | kFlagAclPresent | kFlagAclAllowed | kFlagRate;

/// A tracker block larger than this cannot come from a real snapshot
/// (SAT1's own band/grid bounds cap it far lower); it stops a mutated
/// length field from requesting an absurd allocation.
constexpr std::size_t kMaxTrackerBlock = std::size_t{1} << 26;

constexpr std::uint32_t kFlagRetransmit = 1u << 0;
constexpr std::uint32_t kFlagDuplicateAck = 1u << 0;

/// An inner message can be at most a tracker block plus framing slack.
constexpr std::size_t kMaxInnerMessage = (std::size_t{1} << 26) + 4096;

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

ByteStream frame(FleetWireType type, const ByteStream& payload) {
  ByteStream out;
  put_u32(out, kFleetWireMagic);
  put_u32(out, kFleetWireVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

ByteStream encode_client_state(const FleetClientState& msg) {
  ByteStream payload;
  for (std::uint8_t octet : msg.mac.octets()) put_u8(payload, octet);
  put_u64(payload, msg.generation);
  put_u32(payload, msg.source_site);
  put_u32(payload, msg.dest_site);
  std::uint32_t flags = 0;
  if (msg.state.tracker) flags |= kFlagTracker;
  if (msg.state.acl_allowed) {
    flags |= kFlagAclPresent;
    if (*msg.state.acl_allowed) flags |= kFlagAclAllowed;
  }
  if (msg.state.rate_in_window) flags |= kFlagRate;
  put_u32(payload, flags);
  if (msg.state.tracker) {
    const ByteStream block = serialize_tracker_snapshot(*msg.state.tracker);
    put_u32(payload, static_cast<std::uint32_t>(block.size()));
    payload.insert(payload.end(), block.begin(), block.end());
  }
  if (msg.state.rate_in_window) put_u32(payload, *msg.state.rate_in_window);
  return frame(FleetWireType::kClientState, payload);
}

std::optional<FleetWireType> peek_type(const ByteStream& data) {
  ByteReader r(data);
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto type = r.u32();
  const auto payload_len = r.u32();
  if (!magic || !version || !type || !payload_len) return std::nullopt;
  if (*magic != kFleetWireMagic) return std::nullopt;
  if (*version != kFleetWireVersion) return std::nullopt;
  if (*payload_len != r.remaining()) return std::nullopt;
  switch (*type) {
    case static_cast<std::uint32_t>(FleetWireType::kClientState):
      return FleetWireType::kClientState;
    case static_cast<std::uint32_t>(FleetWireType::kTransportData):
      return FleetWireType::kTransportData;
    case static_cast<std::uint32_t>(FleetWireType::kAck):
      return FleetWireType::kAck;
    default:
      return std::nullopt;
  }
}

std::optional<FleetClientState> decode_client_state(const ByteStream& data) {
  ByteReader r(data);
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto type = r.u32();
  const auto payload_len = r.u32();
  if (!magic || !version || !type || !payload_len) return std::nullopt;
  if (*magic != kFleetWireMagic) return std::nullopt;
  if (*version != kFleetWireVersion) return std::nullopt;
  if (*type != static_cast<std::uint32_t>(FleetWireType::kClientState)) {
    return std::nullopt;
  }
  if (*payload_len != r.remaining()) return std::nullopt;

  FleetClientState msg;
  std::array<std::uint8_t, 6> octets{};
  for (auto& octet : octets) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    octet = *b;
  }
  msg.mac = MacAddress(octets);
  const auto generation = r.u64();
  const auto source_site = r.u32();
  const auto dest_site = r.u32();
  const auto flags = r.u32();
  if (!generation || !source_site || !dest_site || !flags) return std::nullopt;
  if ((*flags & ~kKnownFlags) != 0) return std::nullopt;
  if ((*flags & kFlagAclAllowed) && !(*flags & kFlagAclPresent)) {
    return std::nullopt;
  }
  msg.generation = *generation;
  msg.source_site = *source_site;
  msg.dest_site = *dest_site;
  if (*flags & kFlagTracker) {
    const auto block_len = r.u32();
    if (!block_len || *block_len > kMaxTrackerBlock ||
        *block_len > r.remaining()) {
      return std::nullopt;
    }
    const ByteStream block(r.cursor(), r.cursor() + *block_len);
    r.skip(*block_len);
    auto snap = deserialize_tracker_snapshot(block);
    if (!snap) return std::nullopt;
    msg.state.tracker = std::move(*snap);
  }
  if (*flags & kFlagAclPresent) {
    msg.state.acl_allowed = (*flags & kFlagAclAllowed) != 0;
  }
  if (*flags & kFlagRate) {
    const auto rate = r.u32();
    if (!rate) return std::nullopt;
    msg.state.rate_in_window = *rate;
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

ByteStream encode_transport_data(const FleetTransportData& msg) {
  ByteStream payload;
  put_u64(payload, msg.seq);
  put_u32(payload, msg.retransmit ? kFlagRetransmit : 0u);
  put_u32(payload, static_cast<std::uint32_t>(msg.inner.size()));
  payload.insert(payload.end(), msg.inner.begin(), msg.inner.end());
  put_u32(payload, fnv1a32(payload.data(), payload.size()));
  return frame(FleetWireType::kTransportData, payload);
}

std::optional<FleetTransportData> decode_transport_data(
    const ByteStream& data) {
  if (peek_type(data) != FleetWireType::kTransportData) return std::nullopt;
  ByteReader r(data);
  r.skip(16);  // framing, validated by peek_type
  const std::uint8_t* payload_begin = r.cursor();
  const auto seq = r.u64();
  const auto flags = r.u32();
  const auto inner_len = r.u32();
  if (!seq || !flags || !inner_len) return std::nullopt;
  if ((*flags & ~kFlagRetransmit) != 0) return std::nullopt;
  // The inner bytes must tile the payload exactly: inner_len bytes,
  // then the 4-byte checksum, then nothing.
  if (*inner_len > kMaxInnerMessage) return std::nullopt;
  if (r.remaining() < 4 || *inner_len != r.remaining() - 4) {
    return std::nullopt;
  }
  FleetTransportData msg;
  msg.seq = *seq;
  msg.retransmit = (*flags & kFlagRetransmit) != 0;
  msg.inner.assign(r.cursor(), r.cursor() + *inner_len);
  r.skip(*inner_len);
  const std::size_t summed =
      static_cast<std::size_t>(r.cursor() - payload_begin);
  const auto checksum = r.u32();
  if (!checksum) return std::nullopt;
  if (*checksum != fnv1a32(payload_begin, summed)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return msg;
}

ByteStream encode_ack(const FleetAck& msg) {
  ByteStream payload;
  put_u64(payload, msg.seq);
  put_u32(payload, msg.duplicate ? kFlagDuplicateAck : 0u);
  return frame(FleetWireType::kAck, payload);
}

std::optional<FleetAck> decode_ack(const ByteStream& data) {
  if (peek_type(data) != FleetWireType::kAck) return std::nullopt;
  ByteReader r(data);
  r.skip(16);
  const auto seq = r.u64();
  const auto flags = r.u32();
  if (!seq || !flags) return std::nullopt;
  if ((*flags & ~kFlagDuplicateAck) != 0) return std::nullopt;
  FleetAck msg;
  msg.seq = *seq;
  msg.duplicate = (*flags & kFlagDuplicateAck) != 0;
  if (!r.done()) return std::nullopt;
  return msg;
}

}  // namespace sa
