#include "sa/fleet/wire.hpp"

#include "sa/signature/serialize.hpp"

namespace sa {

namespace {

constexpr std::uint32_t kFlagTracker = 1u << 0;
constexpr std::uint32_t kFlagAclPresent = 1u << 1;
constexpr std::uint32_t kFlagAclAllowed = 1u << 2;
constexpr std::uint32_t kFlagRate = 1u << 3;
constexpr std::uint32_t kKnownFlags =
    kFlagTracker | kFlagAclPresent | kFlagAclAllowed | kFlagRate;

/// A tracker block larger than this cannot come from a real snapshot
/// (SAT1's own band/grid bounds cap it far lower); it stops a mutated
/// length field from requesting an absurd allocation.
constexpr std::size_t kMaxTrackerBlock = std::size_t{1} << 26;

}  // namespace

ByteStream encode_client_state(const FleetClientState& msg) {
  ByteStream payload;
  for (std::uint8_t octet : msg.mac.octets()) put_u8(payload, octet);
  put_u64(payload, msg.generation);
  put_u32(payload, msg.source_site);
  put_u32(payload, msg.dest_site);
  std::uint32_t flags = 0;
  if (msg.state.tracker) flags |= kFlagTracker;
  if (msg.state.acl_allowed) {
    flags |= kFlagAclPresent;
    if (*msg.state.acl_allowed) flags |= kFlagAclAllowed;
  }
  if (msg.state.rate_in_window) flags |= kFlagRate;
  put_u32(payload, flags);
  if (msg.state.tracker) {
    const ByteStream block = serialize_tracker_snapshot(*msg.state.tracker);
    put_u32(payload, static_cast<std::uint32_t>(block.size()));
    payload.insert(payload.end(), block.begin(), block.end());
  }
  if (msg.state.rate_in_window) put_u32(payload, *msg.state.rate_in_window);

  ByteStream out;
  put_u32(out, kFleetWireMagic);
  put_u32(out, kFleetWireVersion);
  put_u32(out, static_cast<std::uint32_t>(FleetWireType::kClientState));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<FleetClientState> decode_client_state(const ByteStream& data) {
  ByteReader r(data);
  const auto magic = r.u32();
  const auto version = r.u32();
  const auto type = r.u32();
  const auto payload_len = r.u32();
  if (!magic || !version || !type || !payload_len) return std::nullopt;
  if (*magic != kFleetWireMagic) return std::nullopt;
  if (*version != kFleetWireVersion) return std::nullopt;
  if (*type != static_cast<std::uint32_t>(FleetWireType::kClientState)) {
    return std::nullopt;
  }
  if (*payload_len != r.remaining()) return std::nullopt;

  FleetClientState msg;
  std::array<std::uint8_t, 6> octets{};
  for (auto& octet : octets) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    octet = *b;
  }
  msg.mac = MacAddress(octets);
  const auto generation = r.u64();
  const auto source_site = r.u32();
  const auto dest_site = r.u32();
  const auto flags = r.u32();
  if (!generation || !source_site || !dest_site || !flags) return std::nullopt;
  if ((*flags & ~kKnownFlags) != 0) return std::nullopt;
  if ((*flags & kFlagAclAllowed) && !(*flags & kFlagAclPresent)) {
    return std::nullopt;
  }
  msg.generation = *generation;
  msg.source_site = *source_site;
  msg.dest_site = *dest_site;
  if (*flags & kFlagTracker) {
    const auto block_len = r.u32();
    if (!block_len || *block_len > kMaxTrackerBlock ||
        *block_len > r.remaining()) {
      return std::nullopt;
    }
    const ByteStream block(r.cursor(), r.cursor() + *block_len);
    r.skip(*block_len);
    auto snap = deserialize_tracker_snapshot(block);
    if (!snap) return std::nullopt;
    msg.state.tracker = std::move(*snap);
  }
  if (*flags & kFlagAclPresent) {
    msg.state.acl_allowed = (*flags & kFlagAclAllowed) != 0;
  }
  if (*flags & kFlagRate) {
    const auto rate = r.u32();
    if (!rate) return std::nullopt;
    msg.state.rate_in_window = *rate;
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

}  // namespace sa
