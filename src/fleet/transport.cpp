#include "sa/fleet/transport.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sa/common/error.hpp"
#include "sa/fleet/wire.hpp"

namespace sa {

namespace {

/// splitmix64 — the same finalizer the compact substrate uses; one
/// application is enough to decorrelate consecutive datagram indices.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A uniform draw in [0, 1) from 53 random bits.
double unit_draw(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::optional<double> parse_prob(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  if (!(v >= 0.0) || !(v <= 1.0)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<FaultKind> fault_kind_from(const std::string& s) {
  if (s == "drop") return FaultKind::kDrop;
  if (s == "dup") return FaultKind::kDuplicate;
  if (s == "reorder") return FaultKind::kReorder;
  if (s == "delay") return FaultKind::kDelay;
  if (s == "corrupt") return FaultKind::kCorrupt;
  if (s == "none") return FaultKind::kNone;
  return std::nullopt;
}

std::string prob_to_string(double v) {
  // Shortest representation that round-trips exactly, so
  // to_string(parse(s)) is stable and "0.15" stays "0.15".
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "none";
}

bool FaultPlan::active() const {
  if (drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 || corrupt > 0) {
    return true;
  }
  for (const auto& [index, kind] : schedule) {
    (void)index;
    if (kind != FaultKind::kNone) return true;
  }
  return false;
}

FaultKind FaultPlan::verdict(std::uint64_t index) const {
  const auto forced = schedule.find(index);
  if (forced != schedule.end()) return forced->second;
  const double u = unit_draw(mix64(seed ^ (index * 0x9e3779b97f4a7c15ULL)));
  double edge = drop;
  if (u < edge) return FaultKind::kDrop;
  edge += duplicate;
  if (u < edge) return FaultKind::kDuplicate;
  edge += reorder;
  if (u < edge) return FaultKind::kReorder;
  edge += delay;
  if (u < edge) return FaultKind::kDelay;
  edge += corrupt;
  if (u < edge) return FaultKind::kCorrupt;
  return FaultKind::kNone;
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  const auto field = [&out](const char* name, double v) {
    if (v > 0) out += std::string(",") + name + "=" + prob_to_string(v);
  };
  field("drop", drop);
  field("dup", duplicate);
  field("reorder", reorder);
  field("delay", delay);
  field("corrupt", corrupt);
  if (delay_ticks != FaultPlan{}.delay_ticks) {
    out += ",delay_ticks=" + std::to_string(delay_ticks);
  }
  if (!schedule.empty()) {
    out += ",force=";
    bool first = true;
    for (const auto& [index, kind] : schedule) {
      if (!first) out += ";";
      first = false;
      out += std::to_string(index) + ":" + sa::to_string(kind);
    }
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t comma = text.find(',', at);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(at, comma - at);
    at = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      plan.seed = *v;
    } else if (key == "drop" || key == "dup" || key == "reorder" ||
               key == "delay" || key == "corrupt") {
      const auto v = parse_prob(value);
      if (!v) return std::nullopt;
      if (key == "drop") plan.drop = *v;
      if (key == "dup") plan.duplicate = *v;
      if (key == "reorder") plan.reorder = *v;
      if (key == "delay") plan.delay = *v;
      if (key == "corrupt") plan.corrupt = *v;
    } else if (key == "delay_ticks") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      plan.delay_ticks = *v;
    } else if (key == "force") {
      std::size_t fat = 0;
      while (fat < value.size()) {
        std::size_t semi = value.find(';', fat);
        if (semi == std::string::npos) semi = value.size();
        const std::string entry = value.substr(fat, semi - fat);
        fat = semi + 1;
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) return std::nullopt;
        const auto index = parse_u64(entry.substr(0, colon));
        const auto kind = fault_kind_from(entry.substr(colon + 1));
        if (!index || !kind) return std::nullopt;
        plan.schedule[*index] = *kind;
      }
    } else {
      return std::nullopt;
    }
  }
  if (plan.drop + plan.duplicate + plan.reorder + plan.delay + plan.corrupt >
      1.0) {
    return std::nullopt;
  }
  return plan;
}

FaultyTransport::FaultyTransport(FleetTransport& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

void FaultyTransport::enqueue(ByteStream bytes, std::uint64_t due) {
  Queued q;
  q.due = due;
  q.order = next_order_++;
  q.bytes = std::move(bytes);
  queue_.push_back(std::move(q));
}

void FaultyTransport::send(ByteStream datagram) {
  const std::uint64_t index = next_index_++;
  ++stats_.sent;
  switch (plan_.verdict(index)) {
    case FaultKind::kDrop:
      ++stats_.dropped;
      return;
    case FaultKind::kDuplicate: {
      ++stats_.duplicated;
      ByteStream copy = datagram;
      enqueue(std::move(copy), now_ + 1);
      enqueue(std::move(datagram), now_ + 1);
      return;
    }
    case FaultKind::kReorder:
      // Held one extra tick, so the next datagram leapfrogs this one.
      ++stats_.reordered;
      enqueue(std::move(datagram), now_ + 2);
      return;
    case FaultKind::kDelay:
      ++stats_.delayed;
      enqueue(std::move(datagram), now_ + 1 + plan_.delay_ticks);
      return;
    case FaultKind::kCorrupt: {
      ++stats_.corrupted;
      if (!datagram.empty()) {
        const std::uint64_t h = mix64(plan_.seed ^ ~index);
        const std::size_t pos = static_cast<std::size_t>(h % datagram.size());
        const std::uint8_t flip =
            static_cast<std::uint8_t>((h >> 17) | 1u);  // never a no-op
        datagram[pos] ^= flip;
      }
      enqueue(std::move(datagram), now_ + 1);
      return;
    }
    case FaultKind::kNone:
      enqueue(std::move(datagram), now_ + 1);
      return;
  }
}

std::size_t FaultyTransport::tick() {
  ++now_;
  // Collect everything due first: delivery callbacks can send more
  // datagrams (acks), which must not be delivered within the same tick.
  std::vector<Queued> due;
  auto keep = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->due <= now_) {
      due.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  queue_.erase(keep, queue_.end());
  std::sort(due.begin(), due.end(), [](const Queued& a, const Queued& b) {
    return a.due != b.due ? a.due < b.due : a.order < b.order;
  });
  for (Queued& q : due) {
    ++stats_.delivered;
    inner_.send(std::move(q.bytes));
  }
  return due.size();
}

ReliableLink::ReliableLink(FleetTransport& transport,
                           ReliableLinkConfig config)
    : transport_(transport), config_(config) {
  SA_EXPECTS(config_.max_attempts >= 1);
  SA_EXPECTS(config_.rto_ticks >= 1);
  transport_.set_receiver(
      [this](const ByteStream& datagram) { on_datagram(datagram); });
}

ReliableLink::SendReport ReliableLink::send_reliable(
    const ByteStream& message) {
  ++stats_.sends;
  SendReport report;
  const std::uint64_t seq = next_seq_++;
  awaiting_seq_ = seq;
  awaiting_acked_ = false;
  std::uint64_t rto = config_.rto_ticks;
  for (std::uint32_t attempt = 1;
       attempt <= config_.max_attempts && !awaiting_acked_; ++attempt) {
    ++report.attempts;
    if (attempt > 1) ++stats_.retransmits;
    FleetTransportData data;
    data.seq = seq;
    data.retransmit = attempt > 1;
    data.inner = message;
    transport_.send(encode_transport_data(data));
    // Exponential backoff with deterministic jitter: up to rto/4 extra
    // ticks, derived from (jitter_seed, seq, attempt) so a replayed run
    // pumps the virtual clock on exactly the same schedule.
    const std::uint64_t jitter =
        mix64(config_.jitter_seed ^ (seq << 8) ^ attempt) % (rto / 4 + 1);
    const std::uint64_t deadline = rto + jitter;
    for (std::uint64_t t = 0; t < deadline && !awaiting_acked_; ++t) {
      transport_.tick();
      ++report.ticks;
    }
    rto = std::min(rto * 2, config_.max_rto_ticks);
  }
  report.acked = awaiting_acked_;
  if (!report.acked) ++stats_.timeouts;
  awaiting_seq_.reset();
  awaiting_acked_ = false;
  return report;
}

void ReliableLink::on_datagram(const ByteStream& datagram) {
  const auto type = peek_type(datagram);
  if (type == FleetWireType::kAck) {
    const auto ack = decode_ack(datagram);
    if (!ack) {
      ++stats_.corrupt_dropped;
      return;
    }
    if (awaiting_seq_ && ack->seq == *awaiting_seq_) {
      awaiting_acked_ = true;
    } else {
      // A delayed or duplicated ack for a send that already concluded
      // (possibly as a cold start) — safe to ignore: the generation
      // guard owns correctness, the ack only ends the retry loop.
      ++stats_.stale_acks;
    }
    return;
  }
  if (type == FleetWireType::kTransportData) {
    const auto data = decode_transport_data(datagram);
    if (!data) {
      // Truncated, reserved-flagged, or checksum-failed: a detected
      // drop. No ack — the sender's retry repairs it.
      ++stats_.corrupt_dropped;
      return;
    }
    const bool seen = std::find(seen_seqs_.begin(), seen_seqs_.end(),
                                data->seq) != seen_seqs_.end();
    if (seen) {
      ++stats_.duplicates_suppressed;
    } else {
      seen_seqs_.push_back(data->seq);
      if (import_) import_(data->inner);
    }
    FleetAck ack;
    ack.seq = data->seq;
    ack.duplicate = seen;
    ++stats_.acks_sent;
    transport_.send(encode_ack(ack));
    return;
  }
  // Unknown or mangled framing (a corrupted magic/type/length).
  ++stats_.corrupt_dropped;
}

}  // namespace sa
