#include "sa/linalg/column_ring.hpp"

#include <algorithm>

#include "sa/common/error.hpp"

namespace sa {

void ColumnRing::relayout(std::size_t new_cap) {
  SA_EXPECTS(new_cap >= size_);
  std::vector<cd> grown(rows_ * new_cap);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * cap_ + off_, size_,
                grown.data() + r * new_cap);
  }
  data_ = std::move(grown);
  cap_ = new_cap;
  off_ = 0;
}

void ColumnRing::append(const CMat& chunk) {
  SA_EXPECTS(rows_ > 0);
  SA_EXPECTS(chunk.rows() == rows_);
  const std::size_t add = chunk.cols();
  if (add == 0) return;
  const std::size_t required = size_ + add;
  if (required * 2 > cap_) {
    // Keep the slab at least twice the window so front-compactions
    // amortize to O(1) per appended column.
    relayout(std::max<std::size_t>(required * 2, 64));
  } else if (off_ + required > cap_) {
    // Enough total room, but the window would run off the slab end:
    // compact it back to offset 0 in place.
    for (std::size_t r = 0; r < rows_; ++r) {
      cd* base = data_.data() + r * cap_;
      std::copy_n(base + off_, size_, base);
    }
    off_ = 0;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(chunk.raw() + r * add, add,
                data_.data() + r * cap_ + off_ + size_);
  }
  size_ += add;
}

void ColumnRing::drop_front(std::size_t n) {
  SA_EXPECTS(n <= size_);
  off_ += n;
  size_ -= n;
}

void ColumnRing::clear() {
  off_ = 0;
  size_ = 0;
}

void ColumnRing::materialize(CMat& out) const {
  out.resize(rows_, size_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * cap_ + off_, size_, out.raw() + r * size_);
  }
}

}  // namespace sa
