#include "sa/linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sa/common/error.hpp"

namespace sa {

RealEigResult jacobi_eigh_real(const std::vector<double>& m, std::size_t n,
                               int max_sweeps, double tol) {
  SA_EXPECTS(m.size() == n * n);
  // Working copy A (row-major) and accumulated rotations V (row-major;
  // eigenvectors end up in V's columns).
  std::vector<double> a = m;
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto A = [&](std::size_t r, std::size_t c) -> double& { return a[r * n + c]; };
  auto V = [&](std::size_t r, std::size_t c) -> double& { return v[r * n + c]; };

  // Scale-aware convergence threshold.
  double fro = 0.0;
  for (double x : a) fro += x * x;
  const double thresh = tol * (1.0 + std::sqrt(fro));

  bool converged = (n <= 1);
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off = std::max(off, std::abs(A(p, q)));
      }
    }
    if (off <= thresh) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::abs(apq) <= thresh * 1e-3) continue;
        const double app = A(p, p);
        const double aqq = A(q, q);
        // Classic Jacobi rotation: choose t = tan(theta) that zeros apq.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Update rows/columns p and q of A (A is symmetric; update both
        // triangles to keep indexing simple).
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = A(k, p);
          const double akq = A(k, q);
          A(k, p) = c * akp - s * akq;
          A(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = A(p, k);
          const double aqk = A(q, k);
          A(p, k) = c * apk - s * aqk;
          A(q, k) = s * apk + c * aqk;
        }
        // Accumulate rotation into V (columns are eigenvectors).
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = V(k, p);
          const double vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged) {
    // Final check: Jacobi reduces off-diagonal monotonically, so a miss
    // here means genuinely pathological input.
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off = std::max(off, std::abs(A(p, q)));
      }
    }
    if (off > thresh * 100.0) {
      throw NumericalError("jacobi_eigh_real: did not converge");
    }
  }

  RealEigResult res;
  res.n = n;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = A(i, i);

  // Sort ascending, permuting eigenvector columns along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return res.values[x] < res.values[y];
  });
  std::vector<double> sorted_vals(n);
  std::vector<double> sorted_vecs(n * n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_vals[k] = res.values[order[k]];
    for (std::size_t r = 0; r < n; ++r) {
      sorted_vecs[k * n + r] = V(r, order[k]);  // column-major output
    }
  }
  res.values = std::move(sorted_vals);
  res.vectors = std::move(sorted_vecs);
  return res;
}

EigResult eigh(const CMat& a) {
  SA_EXPECTS(a.rows() == a.cols());
  SA_EXPECTS(a.is_hermitian(1e-8));
  const std::size_t n = a.rows();

  // Embed A = B + iC into M = [[B, -C], [C, B]] (2n x 2n, symmetric).
  const std::size_t n2 = 2 * n;
  std::vector<double> m(n2 * n2, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double b = a(i, j).real();
      const double c = a(i, j).imag();
      m[i * n2 + j] = b;
      m[i * n2 + (j + n)] = -c;
      m[(i + n) * n2 + j] = c;
      m[(i + n) * n2 + (j + n)] = b;
    }
  }

  const RealEigResult real = jacobi_eigh_real(m, n2);

  // Each complex eigenvalue appears twice; the real eigenvector pair
  // (x; y) and (-y; x) both map to the complex direction x + iy (up to a
  // factor of i). Recover one orthonormal complex vector per pair with
  // modified Gram-Schmidt in eigenvalue order.
  EigResult out;
  out.values.reserve(n);
  out.vectors = CMat(n, n);
  std::vector<CVec> accepted;
  accepted.reserve(n);
  for (std::size_t k = 0; k < n2 && accepted.size() < n; ++k) {
    CVec cand(n);
    for (std::size_t r = 0; r < n; ++r) {
      cand[r] = cd{real.vectors[k * n2 + r], real.vectors[k * n2 + r + n]};
    }
    // Project out everything accepted so far (complex inner products kill
    // the i-rotated duplicate that real orthogonality cannot see).
    for (const CVec& u : accepted) {
      const cd proj = inner(u, cand);
      axpy(cand, -proj, u);
    }
    const double residual = norm(cand);
    if (residual > 0.5) {
      scale(cand, cd{1.0 / residual, 0.0});
      out.vectors.set_col(accepted.size(), cand);
      out.values.push_back(real.values[k]);
      accepted.push_back(std::move(cand));
    }
  }
  if (accepted.size() != n) {
    throw NumericalError("eigh: failed to extract a full complex eigenbasis");
  }
  return out;
}

}  // namespace sa
