#include "sa/linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "sa/common/error.hpp"

namespace sa {

LuDecomposition::LuDecomposition(const CMat& a)
    : n_(a.rows()), lu_(a), piv_(a.rows()) {
  SA_EXPECTS(a.rows() == a.cols());
  std::iota(piv_.begin(), piv_.end(), std::size_t{0});

  const double scale = lu_.frobenius_norm();
  const double tiny = 1e-14 * (1.0 + scale);

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag <= tiny) {
      singular_ = true;
      continue;  // leave column as-is; solve() will refuse
    }
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(pivot_row, j));
      std::swap(piv_[k], piv_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const cd pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const cd factor = lu_(i, k) / pivot;
      lu_(i, k) = factor;
      for (std::size_t j = k + 1; j < n_; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

CVec LuDecomposition::solve(const CVec& b) const {
  SA_EXPECTS(b.size() == n_);
  if (singular_) throw StateError("LuDecomposition::solve: matrix is singular");
  // Apply permutation, then forward/back substitution.
  CVec x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 1; i < n_; ++i) {
    cd s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    cd s = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

CMat LuDecomposition::solve(const CMat& b) const {
  SA_EXPECTS(b.rows() == n_);
  CMat x(n_, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

CMat LuDecomposition::inverse() const { return solve(CMat::identity(n_)); }

cd LuDecomposition::determinant() const {
  cd det{static_cast<double>(pivot_sign_), 0.0};
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

std::optional<CVec> solve(const CMat& a, const CVec& b) {
  const LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

std::optional<CMat> inverse(const CMat& a) {
  const LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.inverse();
}

double quadratic_form(const CVec& a, const CMat& m) {
  SA_EXPECTS(m.rows() == m.cols() && m.rows() == a.size());
  const CVec ma = m * a;
  return inner(a, ma).real();
}

}  // namespace sa
