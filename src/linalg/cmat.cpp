#include "sa/linalg/cmat.hpp"

#include <algorithm>
#include <cmath>

namespace sa {

CMat::CMat(std::size_t rows, std::size_t cols, const CVec& data)
    : rows_(rows), cols_(cols), data_(data) {
  SA_EXPECTS(data_.size() == rows * cols);
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cd{1.0, 0.0};
  return m;
}

CMat CMat::outer(const CVec& a) { return outer(a, a); }

CMat CMat::outer(const CVec& a, const CVec& b) {
  CMat m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      m(i, j) = a[i] * std::conj(b[j]);
    }
  }
  return m;
}

CMat CMat::operator+(const CMat& o) const {
  SA_EXPECTS(rows_ == o.rows_ && cols_ == o.cols_);
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + o.data_[i];
  return out;
}

CMat CMat::operator-(const CMat& o) const {
  SA_EXPECTS(rows_ == o.rows_ && cols_ == o.cols_);
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - o.data_[i];
  return out;
}

CMat CMat::operator*(const CMat& o) const {
  SA_EXPECTS(cols_ == o.rows_);
  CMat out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cd aik = data_[i * cols_ + k];
      if (aik == cd{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        out(i, j) += aik * o(k, j);
      }
    }
  }
  return out;
}

CMat CMat::operator*(cd s) const {
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

CMat& CMat::operator+=(const CMat& o) {
  SA_EXPECTS(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

CMat& CMat::operator*=(cd s) {
  for (cd& x : data_) x *= s;
  return *this;
}

CVec CMat::operator*(const CVec& v) const {
  SA_EXPECTS(cols_ == v.size());
  CVec out(rows_, cd{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i) {
    cd s{0.0, 0.0};
    for (std::size_t j = 0; j < cols_; ++j) s += data_[i * cols_ + j] * v[j];
    out[i] = s;
  }
  return out;
}

CMat CMat::hermitian() const {
  CMat out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

CMat CMat::transpose() const {
  CMat out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

cd CMat::trace() const {
  SA_EXPECTS(rows_ == cols_);
  cd t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double CMat::frobenius_norm() const {
  double s = 0.0;
  for (const cd& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double CMat::max_off_diagonal() const {
  double m = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (i != j) m = std::max(m, std::abs((*this)(i, j)));
    }
  }
  return m;
}

bool CMat::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  const CMat diff = *this - hermitian();
  return diff.frobenius_norm() <= tol * (1.0 + frobenius_norm());
}

CVec CMat::row(std::size_t r) const {
  SA_EXPECTS(r < rows_);
  return CVec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
              data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

CVec CMat::col(std::size_t c) const {
  SA_EXPECTS(c < cols_);
  CVec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

void CMat::set_row(std::size_t r, const CVec& v) {
  SA_EXPECTS(r < rows_ && v.size() == cols_);
  for (std::size_t j = 0; j < cols_; ++j) (*this)(r, j) = v[j];
}

void CMat::set_col(std::size_t c, const CVec& v) {
  SA_EXPECTS(c < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, c) = v[i];
}

}  // namespace sa
