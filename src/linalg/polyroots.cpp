#include "sa/linalg/polyroots.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"

namespace sa {

cd polyval(const CVec& coeffs, cd z) {
  SA_EXPECTS(!coeffs.empty());
  cd acc{0.0, 0.0};
  for (std::size_t k = coeffs.size(); k-- > 0;) {
    acc = acc * z + coeffs[k];
  }
  return acc;
}

CVec polynomial_roots(const CVec& coeffs, int max_iter, double tol) {
  // Trim negligible leading coefficients (relative to the largest).
  double max_mag = 0.0;
  for (const cd& c : coeffs) max_mag = std::max(max_mag, std::abs(c));
  SA_EXPECTS(max_mag > 0.0);
  std::size_t degree = coeffs.size() - 1;
  while (degree > 0 && std::abs(coeffs[degree]) < 1e-12 * max_mag) {
    --degree;
  }
  SA_EXPECTS(degree >= 1);

  // Monic normalization.
  CVec p(coeffs.begin(), coeffs.begin() + static_cast<std::ptrdiff_t>(degree + 1));
  const cd lead = p[degree];
  for (cd& c : p) c /= lead;

  // Cauchy bound on root magnitudes (for the initial circle).
  double bound = 0.0;
  for (std::size_t k = 0; k < degree; ++k) {
    bound = std::max(bound, std::abs(p[k]));
  }
  const double base_radius = std::min(1.0 + bound, 4.0);

  // Scale-aware acceptance: |p(z)| compared against the size of the
  // largest term at z, so residuals near large roots are judged fairly.
  auto accepted = [&](const CVec& z, double rel_tol) {
    for (const cd& zi : z) {
      const double mag = std::max(std::abs(zi), 1.0);
      double term_scale = 1.0;
      double pw = 1.0;
      for (std::size_t k = 0; k <= degree; ++k) {
        term_scale = std::max(term_scale, std::abs(p[k]) * pw);
        pw *= mag;
      }
      if (std::abs(polyval(p, zi)) > rel_tol * term_scale) return false;
    }
    return true;
  };

  // Durand-Kerner with restarts: occasionally a root runs away; a fresh
  // start circle (different phase/radius) fixes it.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const double radius = base_radius * (1.0 + 0.2 * attempt);
    const double phase0 = 0.397 + 0.71 * attempt;
    CVec z(degree);
    for (std::size_t k = 0; k < degree; ++k) {
      const double phi =
          kTwoPi * static_cast<double>(k) / static_cast<double>(degree) +
          phase0;
      z[k] = cd{radius * std::cos(phi), radius * std::sin(phi)};
    }

    bool converged = false;
    for (int it = 0; it < max_iter; ++it) {
      double worst = 0.0;
      for (std::size_t i = 0; i < degree; ++i) {
        cd denom{1.0, 0.0};
        for (std::size_t j = 0; j < degree; ++j) {
          if (j == i) continue;
          cd diff = z[i] - z[j];
          if (std::abs(diff) < 1e-14) diff = cd{1e-14, 1e-14};
          denom *= diff;
        }
        const cd delta = polyval(p, z[i]) / denom;
        z[i] -= delta;
        worst = std::max(worst, std::abs(delta));
      }
      if (worst < tol) {
        converged = true;
        break;
      }
    }
    if (converged && accepted(z, 1e-8)) return z;
    if (!converged && accepted(z, 1e-10)) return z;  // tight residual anyway
  }
  throw NumericalError("polynomial_roots: Durand-Kerner did not converge");
}

}  // namespace sa
