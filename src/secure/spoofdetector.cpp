#include "sa/secure/spoofdetector.hpp"

namespace sa {

SpoofDetector::SpoofDetector(TrackerConfig tracker_config,
                             std::size_t max_tracked_macs)
    : tracker_config_(tracker_config), max_tracked_macs_(max_tracked_macs) {}

SpoofObservation SpoofDetector::observe(const MacAddress& source,
                                        const AoaSignature& signature) {
  return observe(source, SubbandSignature::single(signature));
}

SpoofObservation SpoofDetector::observe(const MacAddress& source,
                                        const SubbandSignature& signature) {
  ++packets_;
  auto it = trackers_.find(source);
  if (it == trackers_.end()) {
    lru_.push_front(source);
    it = trackers_
             .emplace(source,
                      Entry{SignatureTracker(tracker_config_), lru_.begin()})
             .first;
    if (max_tracked_macs_ > 0 && trackers_.size() > max_tracked_macs_) {
      trackers_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  const TrackerDecision d = it->second.tracker.observe(signature);
  SpoofObservation out;
  out.score = d.score;
  switch (d.verdict) {
    case TrackerVerdict::kTraining:
      out.verdict = SpoofVerdict::kTraining;
      break;
    case TrackerVerdict::kMatch:
      out.verdict = SpoofVerdict::kLegitimate;
      break;
    case TrackerVerdict::kMismatch:
      out.verdict = SpoofVerdict::kSpoof;
      ++alarms_;
      break;
  }
  return out;
}

const SignatureTracker* SpoofDetector::tracker(const MacAddress& source) const {
  const auto it = trackers_.find(source);
  return it == trackers_.end() ? nullptr : &it->second.tracker;
}

void SpoofDetector::forget(const MacAddress& source) {
  const auto it = trackers_.find(source);
  if (it == trackers_.end()) return;
  lru_.erase(it->second.lru);
  trackers_.erase(it);
}

SpoofDetectorStats SpoofDetector::stats() const {
  return SpoofDetectorStats{packets_, alarms_, trackers_.size(), evictions_};
}

}  // namespace sa
