#include "sa/secure/spoofdetector.hpp"

namespace sa {

SpoofDetector::SpoofDetector(TrackerConfig tracker_config)
    : tracker_config_(tracker_config) {}

SpoofObservation SpoofDetector::observe(const MacAddress& source,
                                        const AoaSignature& signature) {
  ++packets_;
  auto [it, inserted] =
      trackers_.try_emplace(source, SignatureTracker(tracker_config_));
  const TrackerDecision d = it->second.observe(signature);
  SpoofObservation out;
  out.score = d.score;
  switch (d.verdict) {
    case TrackerVerdict::kTraining:
      out.verdict = SpoofVerdict::kTraining;
      break;
    case TrackerVerdict::kMatch:
      out.verdict = SpoofVerdict::kLegitimate;
      break;
    case TrackerVerdict::kMismatch:
      out.verdict = SpoofVerdict::kSpoof;
      ++alarms_;
      break;
  }
  return out;
}

const SignatureTracker* SpoofDetector::tracker(const MacAddress& source) const {
  const auto it = trackers_.find(source);
  return it == trackers_.end() ? nullptr : &it->second;
}

void SpoofDetector::forget(const MacAddress& source) { trackers_.erase(source); }

SpoofDetectorStats SpoofDetector::stats() const {
  return SpoofDetectorStats{packets_, alarms_, trackers_.size()};
}

}  // namespace sa
