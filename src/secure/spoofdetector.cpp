#include "sa/secure/spoofdetector.hpp"

namespace sa {

SpoofDetector::SpoofDetector(TrackerConfig tracker_config,
                             std::size_t max_tracked_macs,
                             std::size_t idle_expiry_frames)
    : tracker_config_(tracker_config),
      max_tracked_macs_(max_tracked_macs),
      idle_expiry_frames_(idle_expiry_frames),
      trackers_(max_tracked_macs),
      filter_(max_tracked_macs > 0 ? max_tracked_macs : 1024) {}

SpoofObservation SpoofDetector::observe(const MacAddress& source,
                                        const AoaSignature& signature) {
  return observe(source, SubbandSignature::single(signature));
}

SpoofObservation SpoofDetector::observe(const MacAddress& source,
                                        const SubbandSignature& signature) {
  const std::uint64_t now = ++packets_;
  if (idle_expiry_frames_ > 0) expire_idle(now);

  auto r = trackers_.get_or_emplace(source, tracker_config_);
  if (r.inserted) {
    if (r.evicted) {
      ++evictions_;
      filter_.note_erase();
    }
    filter_.insert(source);
    maybe_rebuild_filter();
    if (idle_expiry_frames_ > 0) {
      wheel_.schedule(now + idle_expiry_frames_, source);
    }
  }
  r.value->last_seen = now;

  const TrackerDecision d = r.value->tracker.observe(signature);
  SpoofObservation out;
  out.score = d.score;
  switch (d.verdict) {
    case TrackerVerdict::kTraining:
      out.verdict = SpoofVerdict::kTraining;
      break;
    case TrackerVerdict::kMatch:
      out.verdict = SpoofVerdict::kLegitimate;
      break;
    case TrackerVerdict::kMismatch:
      out.verdict = SpoofVerdict::kSpoof;
      ++alarms_;
      break;
  }
  return out;
}

void SpoofDetector::expire_idle(std::uint64_t now) {
  // Lazy rescheduling (mintmr-style): each live entry has exactly one
  // outstanding wheel event. When it fires we either expire the entry
  // (idle since the deadline was set) or push the event out to the
  // entry's true deadline — one O(1) reschedule per idle period instead
  // of one per observation.
  wheel_.advance(now, [&](MacAddress mac, std::uint64_t) {
    const Entry* e = trackers_.find(mac);
    if (e == nullptr) return;  // forgotten or evicted since scheduling
    const std::uint64_t deadline = e->last_seen + idle_expiry_frames_;
    if (deadline > wheel_.now()) {
      wheel_.schedule(deadline, mac);
      return;
    }
    trackers_.erase(mac);
    filter_.note_erase();
    ++expirations_;
  });
  maybe_rebuild_filter();
}

void SpoofDetector::maybe_rebuild_filter() {
  if (!filter_.should_rebuild(trackers_.size())) return;
  filter_.rebuild(trackers_.size(), [this](auto&& add) {
    trackers_.for_each([&](const MacAddress& key, const Entry&) { add(key); });
  });
}

const SignatureTracker* SpoofDetector::tracker(const MacAddress& source) const {
  if (!filter_.maybe_contains(source)) return nullptr;  // definite miss
  const Entry* e = trackers_.find(source);
  return e == nullptr ? nullptr : &e->tracker;
}

std::optional<TrackerSnapshot> SpoofDetector::export_tracker(
    const MacAddress& source) const {
  if (!filter_.maybe_contains(source)) return std::nullopt;
  const Entry* e = trackers_.find(source);
  if (e == nullptr) return std::nullopt;
  return e->tracker.snapshot();
}

void SpoofDetector::import_tracker(const MacAddress& source,
                                   const TrackerSnapshot& snap) {
  // Mirror observe()'s insertion path with now = packets_ (no tick):
  // the entry becomes the most-recently-seen client, with a full idle
  // window ahead of it, without advancing any other client's clock.
  const std::uint64_t now = packets_;
  auto r = trackers_.get_or_emplace(source, tracker_config_);
  if (r.inserted) {
    if (r.evicted) {
      ++evictions_;
      filter_.note_erase();
    }
    filter_.insert(source);
    maybe_rebuild_filter();
    if (idle_expiry_frames_ > 0) {
      wheel_.schedule(now + idle_expiry_frames_, source);
    }
  }
  r.value->last_seen = now;
  r.value->tracker.restore(snap);
}

void SpoofDetector::forget(const MacAddress& source) {
  if (!trackers_.erase(source)) return;
  filter_.note_erase();
  maybe_rebuild_filter();
}

SpoofDetectorStats SpoofDetector::stats() const {
  return SpoofDetectorStats{packets_, alarms_, trackers_.size(), evictions_,
                            expirations_};
}

}  // namespace sa
