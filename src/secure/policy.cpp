#include "sa/secure/policy.hpp"

#include <algorithm>

#include "sa/common/error.hpp"

namespace sa {

FrameAction FrameDecision::action() const {
  if (accepted) return FrameAction::kAccept;
  if (policy == DecodePolicy::kName) return FrameAction::kDropUndecodable;
  if (policy == SpoofPolicy::kName) return FrameAction::kDropSpoof;
  if (policy == FencePolicy::kName) return FrameAction::kDropFence;
  return FrameAction::kDropPolicy;
}

FrameContext::FrameContext(const std::vector<ApObservation>& observations,
                           const ApObservation& best, std::size_t frame_index,
                           std::optional<SpoofObservation> spoof)
    : observations_(&observations),
      best_(&best),
      frame_index_(frame_index),
      spoof_(spoof) {
  SA_EXPECTS(!observations.empty());
  if (best.packet.frame) source_ = best.packet.frame->addr2;
}

const std::optional<LocalizationResult>& FrameContext::localization() {
  if (!localization_computed_) {
    localization_computed_ = true;
    std::vector<FenceObservation> obs;
    obs.reserve(observations_->size());
    for (const auto& o : *observations_) {
      obs.push_back({o.ap_position, o.packet.bearing_world_deg});
    }
    location_ = localize(obs);
  }
  return location_;
}

PolicyChain& PolicyChain::add(std::unique_ptr<SecurityPolicy> policy) {
  SA_EXPECTS(policy != nullptr);
  stats_.push_back(PolicyStats{policy->name(), 0, 0, 0});
  policies_.push_back(std::move(policy));
  return *this;
}

FrameDecision PolicyChain::run(FrameContext& ctx) {
  ++frames_;
  FrameDecision d;
  d.trace.reserve(policies_.size());
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const PolicyVerdict v = policies_[i]->evaluate(ctx);
    ++stats_[i].evaluated;
    d.trace.push_back({stats_[i].name, v.drop, v.detail});
    if (v.drop) {
      ++stats_[i].dropped;
      d.accepted = false;
      d.policy = stats_[i].name;
      d.detail = v.detail;
      break;
    }
    ++stats_[i].accepted;
  }
  if (d.accepted) {
    ++accepted_;
    d.detail = "accepted";
  }
  d.source = ctx.source();
  if (ctx.spoof()) {
    d.spoof = ctx.spoof()->verdict;
    d.spoof_score = ctx.spoof()->score;
  }
  if (ctx.localization_computed()) {
    d.location = ctx.localization();
  }
  return d;
}

std::size_t PolicyChain::drops(std::string_view policy_name) const {
  for (const auto& s : stats_) {
    if (s.name == policy_name) return s.dropped;
  }
  return 0;
}

void PolicyChain::reset_stats() {
  frames_ = 0;
  accepted_ = 0;
  for (auto& s : stats_) {
    s.evaluated = 0;
    s.accepted = 0;
    s.dropped = 0;
  }
}

void PolicyChain::add_stats_from(const PolicyChain& other) {
  SA_EXPECTS(other.stats_.size() == stats_.size());
  frames_ += other.frames_;
  accepted_ += other.accepted_;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    SA_EXPECTS(other.stats_[i].name == stats_[i].name);
    stats_[i].evaluated += other.stats_[i].evaluated;
    stats_[i].accepted += other.stats_[i].accepted;
    stats_[i].dropped += other.stats_[i].dropped;
  }
}

bool PolicyChain::contains(std::string_view policy_name) const {
  return std::any_of(stats_.begin(), stats_.end(), [&](const PolicyStats& s) {
    return s.name == policy_name;
  });
}

// ------------------------------------------------------------- policies

PolicyVerdict DecodePolicy::evaluate(FrameContext& ctx) {
  if (!ctx.decoded()) return PolicyVerdict::deny(kDetailUndecodable);
  return PolicyVerdict::accept();
}

PolicyVerdict AclPolicy::evaluate(FrameContext& ctx) {
  if (!ctx.source()) return PolicyVerdict::deny(kDetailDenied);
  if (!acl_.is_allowed(*ctx.source())) return PolicyVerdict::deny(kDetailDenied);
  return PolicyVerdict::accept();
}

FencePolicy::FencePolicy(VirtualFence fence, std::size_t min_aps,
                         bool fail_open)
    : fence_(std::move(fence)), min_aps_(min_aps), fail_open_(fail_open) {}

PolicyVerdict FencePolicy::evaluate(FrameContext& ctx) {
  if (ctx.observations().size() < min_aps_) {
    // Fail closed by default: only clients positively localized inside
    // the boundary get access, which is the paper's intent.
    if (fail_open_) return PolicyVerdict::accept();
    return PolicyVerdict::deny(kDetailTooFewAps);
  }
  const FenceDecision fd = fence_.check_localized(ctx.localization());
  if (!fd.allowed) return PolicyVerdict::deny(fd.reason);
  return PolicyVerdict::accept(fd.reason);
}

PolicyVerdict SpoofPolicy::evaluate(FrameContext& ctx) {
  if (ctx.spoof() && ctx.spoof()->verdict == SpoofVerdict::kSpoof) {
    return PolicyVerdict::deny(kDetailSpoof);
  }
  return PolicyVerdict::accept();
}

RateLimitPolicy::RateLimitPolicy(RateLimitConfig config)
    : config_(config), history_(config.max_tracked_macs) {
  SA_EXPECTS(config_.max_frames >= 1);
  SA_EXPECTS(config_.window_frames >= 1);
}

void RateLimitPolicy::retire_until(std::uint64_t now) {
  // Retire admits that have left the window: the decrement for an admit
  // at frame a is due at a + window_frames, i.e. exactly when the old
  // implementation's prune dropped a (a < now - window_frames + 1).
  wheel_.advance(now, [&](Decrement d, std::uint64_t) {
    RateState* st = history_.find(d.mac);  // pure read: no LRU touch
    if (st == nullptr || st->generation != d.generation) return;
    if (--st->in_window == 0) history_.erase(d.mac);
  });
}

void RateLimitPolicy::advance_to(std::size_t frame) { retire_until(frame); }

PolicyVerdict RateLimitPolicy::evaluate(FrameContext& ctx) {
  if (!ctx.source()) return PolicyVerdict::deny(kDetailNoSource);
  const MacAddress& mac = *ctx.source();
  const std::size_t now = ctx.frame_index();

  retire_until(now);

  const auto r = history_.get_or_emplace(mac);
  if (r.evicted) ++evictions_;
  if (r.inserted) r.value->generation = ++next_generation_;
  if (r.value->restart_pending) {
    // Rate-window restart rule: residue imported by a handoff re-enters
    // the window at the client's first local frame. Schedule its
    // decrements one full window out now — before the deny check, or a
    // max_frames residue would deny forever.
    r.value->restart_pending = false;
    for (std::uint32_t i = 0; i < r.value->in_window; ++i) {
      wheel_.schedule(now + config_.window_frames,
                      Decrement{mac, r.value->generation});
    }
  }
  if (r.value->in_window >= config_.max_frames) {
    // Denied frames never consume window budget (and never did).
    return PolicyVerdict::deny(kDetailLimited);
  }
  ++r.value->in_window;
  wheel_.schedule(now + config_.window_frames,
                  Decrement{mac, r.value->generation});
  return PolicyVerdict::accept();
}

std::optional<std::uint32_t> RateLimitPolicy::export_residue(
    const MacAddress& mac) const {
  const RateState* st = history_.find(mac);
  if (st == nullptr) return std::nullopt;
  return st->in_window;
}

void RateLimitPolicy::import_residue(const MacAddress& mac,
                                     std::uint32_t in_window) {
  if (in_window == 0) {
    forget(mac);
    return;
  }
  const auto r = history_.get_or_emplace(mac);
  if (r.evicted) ++evictions_;
  // Always a fresh generation — whether inserted or overwriting — so any
  // decrement still scheduled for a prior incarnation cannot debit the
  // imported count.
  r.value->generation = ++next_generation_;
  r.value->in_window = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(in_window, config_.max_frames));
  r.value->restart_pending = true;
}

void RateLimitPolicy::forget(const MacAddress& mac) { history_.erase(mac); }

// ------------------------------------------------------- chain building

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcl: return AclPolicy::kName;
    case PolicyKind::kFence: return FencePolicy::kName;
    case PolicyKind::kSpoof: return SpoofPolicy::kName;
    case PolicyKind::kRateLimit: return RateLimitPolicy::kName;
  }
  return "?";
}

std::optional<PolicyKind> policy_kind_from_string(std::string_view name) {
  if (name == AclPolicy::kName) return PolicyKind::kAcl;
  if (name == FencePolicy::kName) return PolicyKind::kFence;
  if (name == SpoofPolicy::kName) return PolicyKind::kSpoof;
  if (name == RateLimitPolicy::kName) return PolicyKind::kRateLimit;
  return std::nullopt;
}

}  // namespace sa
