#include "sa/secure/accesspoint.hpp"

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/fft.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

std::string_view to_string(BandFusion fusion) {
  switch (fusion) {
    case BandFusion::kUniform: return "uniform";
    case BandFusion::kSnr: return "snr";
  }
  return "?";
}

std::optional<BandFusion> band_fusion_from_string(std::string_view name) {
  if (name == "uniform") return BandFusion::kUniform;
  if (name == "snr") return BandFusion::kSnr;
  return std::nullopt;
}

namespace {

/// Estimated SNR of one subband from the ascending eigenvalues of its
/// processed covariance: signal-subspace mean over noise-subspace mean,
/// minus the noise floor itself. `num_sources` comes from the band's
/// estimate when the backend computed one (MUSIC family); backends that
/// never split subspaces (Capon, Bartlett) report 0 and fall back to a
/// single presumed source.
double band_snr_weight(const SpectralContext& ctx, std::size_t num_sources) {
  const std::vector<double>& eigs = ctx.eig().values;  // ascending
  const std::size_t n = eigs.size();
  if (n < 2) return 1.0;
  std::size_t p = num_sources;
  if (p == 0 || p >= n) p = 1;
  double noise = 0.0;
  for (std::size_t i = 0; i < n - p; ++i) noise += eigs[i];
  noise /= static_cast<double>(n - p);
  double signal = 0.0;
  for (std::size_t i = n - p; i < n; ++i) signal += eigs[i];
  signal = signal / static_cast<double>(p) - noise;
  // The epsilon keeps an all-noise band's weight positive so the fused
  // weight vector always sums above zero.
  return std::max(signal, 0.0) / std::max(noise, 1e-30) + 1e-12;
}

}  // namespace

AccessPoint::AccessPoint(AccessPointConfig config, Rng& rng)
    : config_(std::move(config)),
      impairments_(ArrayImpairments::random(config_.geometry.size(), rng,
                                            config_.chain_gain_sigma)),
      calibration_(CalibrationTable::identity(config_.geometry.size())),
      detector_([&] {
        DetectorConfig d = config_.detector;
        d.sample_rate_hz = config_.sample_rate_hz;
        return d;
      }()),
      estimator_(make_aoa_estimator(config_.estimator, [&] {
        AoaEstimatorConfig e;
        e.music = config_.music;
        e.capon_loading = config_.capon_loading;
        return e;
      }())) {
  SA_EXPECTS(is_pow2(config_.subbands) && config_.subbands <= 64);
  if (config_.apply_calibration) {
    const Calibrator cal(config_.calibrator);
    calibration_ = cal.run(impairments_, rng);
  }
}

double AccessPoint::wavelength_m() const {
  return wavelength(config_.carrier_hz);
}

ArrayPlacement AccessPoint::placement() const {
  return ArrayPlacement{config_.geometry, config_.position,
                        config_.orientation_deg};
}

CMat AccessPoint::condition(const CMat& channel_samples) const {
  CMat x = channel_samples;
  condition_inplace(x);
  return x;
}

void AccessPoint::condition_inplace(CMat& channel_samples) const {
  SA_EXPECTS(channel_samples.rows() == config_.geometry.size());
  impairments_.apply(channel_samples);
  calibration_.apply(channel_samples);
}

void AccessPoint::condition_cols(ColumnRing& window, std::size_t col_begin,
                                 std::size_t col_end) const {
  SA_EXPECTS(window.rows() == config_.geometry.size());
  SA_EXPECTS(col_begin <= col_end && col_end <= window.cols());
  // Two passes (impairments, then calibration) over each element
  // through the classes' own apply_row primitives — the same
  // per-element multiply sequence as condition_inplace, so a column
  // conditioned here is bit-identical to the same column conditioned
  // as part of a whole-buffer pass, and a future conditioning-stage
  // change lands in both paths.
  const std::size_t n = col_end - col_begin;
  for (std::size_t m = 0; m < window.rows(); ++m) {
    impairments_.apply_row(m, window.row_mut(m) + col_begin, n);
  }
  for (std::size_t m = 0; m < window.rows(); ++m) {
    calibration_.apply_row(m, window.row_mut(m) + col_begin, n);
  }
}

std::vector<PacketDetection> AccessPoint::detect(const CMat& conditioned) const {
  SA_EXPECTS(conditioned.rows() == config_.geometry.size());
  // Detection runs on the reference antenna (chain 0).
  return detector_.detect(conditioned.row(0));
}

MusicResult AccessPoint::music_from_samples(const CMat& packet_samples) const {
  SA_EXPECTS(packet_samples.rows() == config_.geometry.size());
  const CMat r = sample_covariance(packet_samples);
  return estimator_->estimate(r, config_.geometry, wavelength_m());
}

AoaSignature AccessPoint::signature_from_samples(
    const CMat& packet_samples) const {
  MusicResult res = music_from_samples(packet_samples);
  return AoaSignature::from_spectrum(std::move(res.spectrum),
                                     config_.signature);
}

std::vector<double> AccessPoint::to_world_bearings(
    double array_bearing_deg) const {
  return array_to_world_bearings(config_.geometry, array_bearing_deg,
                                 config_.orientation_deg);
}

std::optional<AccessPoint::FramePrep> AccessPoint::prepare(
    const CMat& conditioned, const PacketDetection& det,
    FrameScratch* scratch) const {
  SA_EXPECTS(conditioned.rows() == config_.geometry.size());
  FramePrep prep;
  prep.detection = det;

  // PHY decode from the reference antenna with CFO corrected. CMat is
  // row-major, so row 0 is the contiguous prefix of data(): slice the
  // tail directly rather than materializing the whole row per candidate.
  const CVec& flat = conditioned.data();
  CVec local_aligned;
  CVec& aligned = scratch ? scratch->aligned : local_aligned;
  aligned.assign(flat.begin() + static_cast<std::ptrdiff_t>(det.start),
                 flat.begin() + static_cast<std::ptrdiff_t>(conditioned.cols()));
  apply_cfo(aligned, -det.cfo_hz, config_.sample_rate_hz);
  prep.phy = phy_rx_.decode(aligned);
  if (prep.phy) {
    prep.frame = Frame::parse(prep.phy->psdu);
  }

  // Covariance over the whole packet (paper §3: mean phase differences
  // over each entire packet). A scalar per-snapshot CFO rotation leaves
  // x x^H unchanged, so no CFO correction is needed here.
  const std::size_t span = prep.phy
                               ? prep.phy->samples_consumed
                               : kPreambleLen + kSymbolLen;  // fallback
  const std::size_t end = std::min(det.start + span, conditioned.cols());
  if (end <= det.start + kPreambleLen / 2) {
    return std::nullopt;  // truncated capture
  }

  const SpectralOptions opts = estimator_->spectral_options();
  const std::size_t num_bands = config_.subbands;
  const std::size_t n_win =
      (end - det.start) / std::max<std::size_t>(num_bands, 1);
  if (num_bands <= 1 || n_win < 1) {
    // Narrowband (or too-short-to-split) path: one full-band context,
    // accumulated straight off the shared conditioned window — no
    // per-frame block copy.
    prep.bands.emplace_back(sample_covariance_cols(conditioned, det.start, end),
                            config_.geometry, wavelength_m(), opts);
    return prep;
  }

  // Wideband split: a length-K DFT (radix-2 FFT) over consecutive
  // K-sample windows turns the packet into n_win snapshots per subband;
  // each subband gets its own covariance and its own centre wavelength.
  // Bands are ordered by ascending frequency (fftshift order), so band
  // K/2 is the carrier. The window and subband snapshot matrices come
  // from the per-worker scratch when one is provided.
  const std::size_t k = num_bands;
  std::vector<CMat> local_sub;
  std::vector<CMat>& sub = scratch ? scratch->sub : local_sub;
  if (sub.size() < k) sub.resize(k);
  for (std::size_t b = 0; b < k; ++b) sub[b].resize(conditioned.rows(), n_win);
  CVec local_window;
  CVec& window = scratch ? scratch->window : local_window;
  window.resize(k);
  for (std::size_t m = 0; m < conditioned.rows(); ++m) {
    for (std::size_t t = 0; t < n_win; ++t) {
      for (std::size_t i = 0; i < k; ++i) {
        window[i] = conditioned(m, det.start + t * k + i);
      }
      fft_inplace(window);
      for (std::size_t b = 0; b < k; ++b) {
        sub[b](m, t) = window[(b + k / 2) % k];
      }
    }
  }
  prep.bands.reserve(k);
  for (std::size_t b = 0; b < k; ++b) {
    const double offset_hz = (static_cast<double>(b) - k / 2.0) *
                             config_.sample_rate_hz / static_cast<double>(k);
    prep.bands.emplace_back(sample_covariance(sub[b]), config_.geometry,
                            wavelength(config_.carrier_hz + offset_hz), opts);
  }
  return prep;
}

MusicResult AccessPoint::estimate_band(const FramePrep& prep,
                                       std::size_t band) const {
  SA_EXPECTS(band < prep.bands.size());
  if (!config_.share_spectral_cache) {
    // A/B knob: rebuild a cold context so every consumer pays for its
    // own decomposition, like the pre-context pipeline did.
    const SpectralContext& ctx = prep.bands[band];
    return estimator_->estimate(SpectralContext(
        ctx.covariance(), ctx.geometry(), ctx.lambda_m(), ctx.options()));
  }
  return estimator_->estimate(prep.bands[band]);
}

ReceivedPacket AccessPoint::assemble(
    FramePrep prep, std::vector<MusicResult> band_results) const {
  SA_EXPECTS(!band_results.empty());
  SA_EXPECTS(band_results.size() == prep.bands.size());
  ReceivedPacket pkt;
  pkt.detection = prep.detection;
  pkt.phy = std::move(prep.phy);
  pkt.frame = std::move(prep.frame);

  std::vector<AoaSignature> band_sigs;
  band_sigs.reserve(band_results.size());
  for (const auto& res : band_results) {
    band_sigs.push_back(
        AoaSignature::from_spectrum(res.spectrum, config_.signature));
  }
  pkt.subband = SubbandSignature(std::move(band_sigs));
  if (pkt.subband.num_bands() == 1) {
    pkt.signature = pkt.subband.band(0);
  } else if (config_.band_fusion == BandFusion::kSnr) {
    std::vector<double> weights;
    weights.reserve(prep.bands.size());
    for (std::size_t b = 0; b < prep.bands.size(); ++b) {
      weights.push_back(
          band_snr_weight(prep.bands[b], band_results[b].num_sources));
    }
    pkt.signature = pkt.subband.fuse(config_.signature, weights);
  } else {
    pkt.signature = pkt.subband.fuse(config_.signature);
  }

  // The centre band (the full band when subbands == 1) supplies the
  // MusicResult, the bearing-selection covariance, and the search-free
  // bearings the grid estimate snaps to.
  const std::size_t centre = band_results.size() / 2;
  const SpectralContext& ctx = prep.bands[centre];
  pkt.music = std::move(band_results[centre]);

  if (config_.power_weighted_bearing) {
    if (config_.share_spectral_cache) {
      pkt.bearing_array_deg = power_weighted_direct_bearing_with_inverse_deg(
          pkt.signature.spectrum(), pkt.signature.peaks(), ctx.inverse(1e-3),
          config_.geometry, ctx.lambda_m());
    } else {
      pkt.bearing_array_deg = power_weighted_direct_bearing_deg(
          pkt.signature.spectrum(), pkt.signature.peaks(), ctx.covariance(),
          config_.geometry, ctx.lambda_m());
    }
  } else {
    pkt.bearing_array_deg = pkt.signature.direct_bearing_deg();
  }
  // Root-MUSIC/ESPRIT backends: snap the chosen grid bearing to the
  // nearest search-free estimate — finer than any scan grid (linear
  // arrays only).
  if (!pkt.music.source_bearings_deg.empty()) {
    const double snap_radius = 2.0 * config_.music.scan_step_deg;
    double best = pkt.bearing_array_deg;
    double best_dist = snap_radius;
    for (double b : pkt.music.source_bearings_deg) {
      const double dist = std::abs(b - pkt.bearing_array_deg);
      if (dist < best_dist) {
        best_dist = dist;
        best = b;
      }
    }
    pkt.bearing_array_deg = best;
  }
  pkt.bearing_world_deg = to_world_bearings(pkt.bearing_array_deg);
  return pkt;
}

std::optional<ReceivedPacket> AccessPoint::demodulate(
    const CMat& conditioned, const PacketDetection& det,
    FrameScratch* scratch) const {
  auto prep = prepare(conditioned, det, scratch);
  if (!prep) return std::nullopt;
  std::vector<MusicResult> results;
  results.reserve(prep->bands.size());
  for (std::size_t b = 0; b < prep->bands.size(); ++b) {
    results.push_back(estimate_band(*prep, b));
  }
  return assemble(std::move(*prep), std::move(results));
}

std::vector<ReceivedPacket> AccessPoint::receive(const CMat& channel_samples) {
  const CMat x = condition(channel_samples);
  const auto detections = detect(x);

  std::vector<ReceivedPacket> out;
  out.reserve(detections.size());
  for (const auto& det : detections) {
    if (auto pkt = demodulate(x, det)) {
      out.push_back(std::move(*pkt));
    }
  }
  return out;
}

}  // namespace sa
