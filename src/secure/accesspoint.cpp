#include "sa/secure/accesspoint.hpp"

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

AccessPoint::AccessPoint(AccessPointConfig config, Rng& rng)
    : config_(std::move(config)),
      impairments_(ArrayImpairments::random(config_.geometry.size(), rng,
                                            config_.chain_gain_sigma)),
      calibration_(CalibrationTable::identity(config_.geometry.size())),
      detector_([&] {
        DetectorConfig d = config_.detector;
        d.sample_rate_hz = config_.sample_rate_hz;
        return d;
      }()),
      estimator_(make_aoa_estimator(config_.estimator, [&] {
        AoaEstimatorConfig e;
        e.music = config_.music;
        e.capon_loading = config_.capon_loading;
        return e;
      }())) {
  if (config_.apply_calibration) {
    const Calibrator cal(config_.calibrator);
    calibration_ = cal.run(impairments_, rng);
  }
}

double AccessPoint::wavelength_m() const {
  return wavelength(config_.carrier_hz);
}

ArrayPlacement AccessPoint::placement() const {
  return ArrayPlacement{config_.geometry, config_.position,
                        config_.orientation_deg};
}

CMat AccessPoint::condition(const CMat& channel_samples) const {
  SA_EXPECTS(channel_samples.rows() == config_.geometry.size());
  CMat x = channel_samples;
  impairments_.apply(x);
  calibration_.apply(x);
  return x;
}

std::vector<PacketDetection> AccessPoint::detect(const CMat& conditioned) const {
  SA_EXPECTS(conditioned.rows() == config_.geometry.size());
  // Detection runs on the reference antenna (chain 0).
  return detector_.detect(conditioned.row(0));
}

MusicResult AccessPoint::music_from_samples(const CMat& packet_samples) const {
  SA_EXPECTS(packet_samples.rows() == config_.geometry.size());
  const CMat r = sample_covariance(packet_samples);
  return estimator_->estimate(r, config_.geometry, wavelength_m());
}

AoaSignature AccessPoint::signature_from_samples(
    const CMat& packet_samples) const {
  MusicResult res = music_from_samples(packet_samples);
  return AoaSignature::from_spectrum(std::move(res.spectrum),
                                     config_.signature);
}

std::vector<double> AccessPoint::to_world_bearings(
    double array_bearing_deg) const {
  return array_to_world_bearings(config_.geometry, array_bearing_deg,
                                 config_.orientation_deg);
}

std::optional<ReceivedPacket> AccessPoint::demodulate(
    const CMat& conditioned, const PacketDetection& det) const {
  SA_EXPECTS(conditioned.rows() == config_.geometry.size());
  ReceivedPacket pkt;
  pkt.detection = det;

  // PHY decode from the reference antenna with CFO corrected. CMat is
  // row-major, so row 0 is the contiguous prefix of data(): slice the
  // tail directly rather than materializing the whole row per candidate.
  const CVec& flat = conditioned.data();
  CVec aligned(flat.begin() + static_cast<std::ptrdiff_t>(det.start),
               flat.begin() + static_cast<std::ptrdiff_t>(conditioned.cols()));
  apply_cfo(aligned, -det.cfo_hz, config_.sample_rate_hz);
  pkt.phy = phy_rx_.decode(aligned);
  if (pkt.phy) {
    pkt.frame = Frame::parse(pkt.phy->psdu);
  }

  // Covariance over the whole packet (paper §3: mean phase differences
  // over each entire packet). A scalar per-snapshot CFO rotation leaves
  // x x^H unchanged, so no CFO correction is needed here.
  const std::size_t span = pkt.phy
                               ? pkt.phy->samples_consumed
                               : kPreambleLen + kSymbolLen;  // fallback
  const std::size_t end = std::min(det.start + span, conditioned.cols());
  if (end <= det.start + kPreambleLen / 2) {
    return std::nullopt;  // truncated capture
  }
  CMat block(conditioned.rows(), end - det.start);
  for (std::size_t m = 0; m < conditioned.rows(); ++m) {
    for (std::size_t t = det.start; t < end; ++t) {
      block(m, t - det.start) = conditioned(m, t);
    }
  }
  const CMat r = sample_covariance(block);
  pkt.music = estimator_->estimate(r, config_.geometry, wavelength_m());
  pkt.signature =
      AoaSignature::from_spectrum(pkt.music.spectrum, config_.signature);
  if (config_.power_weighted_bearing) {
    pkt.bearing_array_deg = power_weighted_direct_bearing_deg(
        pkt.signature.spectrum(), pkt.signature.peaks(), r, config_.geometry,
        wavelength_m());
  } else {
    pkt.bearing_array_deg = pkt.signature.direct_bearing_deg();
  }
  // Root-MUSIC backend: snap the chosen grid bearing to the nearest
  // polynomial root — finer than any scan grid (linear arrays only).
  if (!pkt.music.source_bearings_deg.empty()) {
    const double snap_radius = 2.0 * config_.music.scan_step_deg;
    double best = pkt.bearing_array_deg;
    double best_dist = snap_radius;
    for (double b : pkt.music.source_bearings_deg) {
      const double dist = std::abs(b - pkt.bearing_array_deg);
      if (dist < best_dist) {
        best_dist = dist;
        best = b;
      }
    }
    pkt.bearing_array_deg = best;
  }
  pkt.bearing_world_deg = to_world_bearings(pkt.bearing_array_deg);
  return pkt;
}

std::vector<ReceivedPacket> AccessPoint::receive(const CMat& channel_samples) {
  const CMat x = condition(channel_samples);
  const auto detections = detect(x);

  std::vector<ReceivedPacket> out;
  out.reserve(detections.size());
  for (const auto& det : detections) {
    if (auto pkt = demodulate(x, det)) {
      out.push_back(std::move(*pkt));
    }
  }
  return out;
}

}  // namespace sa
