#include "sa/secure/streaming.hpp"

#include <atomic>

#include "sa/common/error.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

StreamingReceiver::StreamingReceiver(AccessPoint& ap, StreamingConfig config)
    : ap_(ap),
      config_(config),
      cond_(ap.config().geometry.size()),
      detector_(ap.detector().config()) {
  SA_EXPECTS(config_.history_samples > kPreambleLen + config_.tail_guard);
  SA_EXPECTS(config_.max_packet_samples < config_.history_samples);
}

StreamingReceiver::Scan StreamingReceiver::scan(const CMat* chunk) {
  const std::size_t prev_seen = base_ + buffered_cols_;
  if (chunk != nullptr) {
    SA_EXPECTS(chunk->rows() == ap_.config().geometry.size());
    // Append the raw chunk, then condition exactly the new columns: the
    // history prefix was conditioned when it arrived and its values are
    // immutable from then on.
    cond_.append(*chunk);
    ap_.condition_cols(cond_, buffered_cols_, buffered_cols_ + chunk->cols());
    buffered_cols_ += chunk->cols();
  }

  Scan out;
  out.base = base_;
  out.seen = base_ + buffered_cols_;
  out.prev_seen = prev_seen;
  if (buffered_cols_ < kPreambleLen + kSymbolLen) return out;

  // Incremental detection over the conditioned reference row: identical
  // output to running the full detector over the window, with the
  // fine-timing searches memoized across scans.
  for (const auto& det : detector_.scan(cond_.row(0), buffered_cols_, base_)) {
    const std::size_t abs_start = base_ + det.start;
    if (abs_start < emit_watermark_) continue;  // already emitted
    out.candidates.push_back({abs_start, det});
  }
  if (out.candidates.empty()) return out;  // nothing would read a snapshot

  // Snapshot the conditioned window for the demodulate workers — a plain
  // per-row copy, no conditioning math, into a recycled allocation when
  // a previous scan's snapshot has been released by every consumer.
  std::shared_ptr<CMat> snapshot;
  for (auto& pooled : snapshot_pool_) {
    if (pooled.use_count() == 1) {
      // A pipelined caller's workers drop their references on other
      // threads; pair an acquire fence with the control counter's
      // release decrement so their final reads are ordered before the
      // overwrite below.
      std::atomic_thread_fence(std::memory_order_acquire);
      snapshot = pooled;
      break;
    }
  }
  if (!snapshot) {
    snapshot = std::make_shared<CMat>();
    if (snapshot_pool_.size() < 8) snapshot_pool_.push_back(snapshot);
  }
  cond_.materialize(*snapshot);
  out.conditioned = snapshot;
  return out;
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::commit(
    const Scan& scan, std::vector<std::optional<ReceivedPacket>> processed,
    bool final_pass) {
  SA_EXPECTS(processed.size() == scan.candidates.size());
  std::vector<StreamPacket> out;
  for (std::size_t i = 0; i < scan.candidates.size(); ++i) {
    const Candidate& cand = scan.candidates[i];
    // Re-check against the watermark: an earlier candidate emitted in
    // this very commit may have covered this one.
    if (cand.absolute_start < emit_watermark_) continue;
    if (!processed[i]) continue;  // truncated capture: retried next scan
    ReceivedPacket& pkt = *processed[i];

    // A successful decode proves the whole packet was in the buffer (the
    // PHY checks the SIGNAL length fits and the MAC FCS verifies), so it
    // is emitted immediately. A failed decode may just mean the packet
    // is still arriving: retry until max_packet_samples have accumulated
    // past the detection, then emit it as genuinely undecodable. All of
    // this is computed in the scan's own absolute coordinates, so a
    // commit applied behind a later scan behaves exactly as it would
    // have lock-step.
    const std::size_t projected_end =
        cand.absolute_start +
        (pkt.phy ? pkt.phy->samples_consumed : kPreambleLen + kSymbolLen);
    if (!final_pass && !pkt.phy &&
        cand.absolute_start + config_.max_packet_samples > scan.seen) {
      continue;
    }
    emit_watermark_ = projected_end;
    out.push_back({cand.absolute_start, std::move(pkt)});
  }

  if (final_pass) {
    base_ += buffered_cols_;
    cond_.clear();
    buffered_cols_ = 0;
  } else {
    trim();
  }
  return out;
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::push(
    const CMat& chunk) {
  Scan s = scan(&chunk);
  std::vector<std::optional<ReceivedPacket>> processed;
  processed.reserve(s.candidates.size());
  for (const auto& cand : s.candidates) {
    processed.push_back(ap_.demodulate(*s.conditioned, cand.detection));
  }
  return commit(s, std::move(processed), /*final_pass=*/false);
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::flush() {
  Scan s = scan(nullptr);
  std::vector<std::optional<ReceivedPacket>> processed;
  processed.reserve(s.candidates.size());
  for (const auto& cand : s.candidates) {
    processed.push_back(ap_.demodulate(*s.conditioned, cand.detection));
  }
  return commit(s, std::move(processed), /*final_pass=*/true);
}

void StreamingReceiver::trim() {
  if (buffered_cols_ <= config_.history_samples) return;
  const std::size_t drop = buffered_cols_ - config_.history_samples;
  cond_.drop_front(drop);
  buffered_cols_ = config_.history_samples;
  base_ += drop;
}

}  // namespace sa
