#include "sa/secure/streaming.hpp"

#include <algorithm>

#include "sa/common/error.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

StreamingReceiver::StreamingReceiver(AccessPoint& ap, StreamingConfig config)
    : ap_(ap), config_(config) {
  SA_EXPECTS(config_.history_samples > kPreambleLen + config_.tail_guard);
  SA_EXPECTS(config_.max_packet_samples < config_.history_samples);
  const std::size_t n_ant = ap_.config().geometry.size();
  buffer_ = CMat(n_ant, 0);
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::push(
    const CMat& chunk) {
  SA_EXPECTS(chunk.rows() == ap_.config().geometry.size());
  // Append the chunk.
  CMat grown(buffer_.rows(), buffered_cols_ + chunk.cols());
  for (std::size_t m = 0; m < buffer_.rows(); ++m) {
    for (std::size_t t = 0; t < buffered_cols_; ++t) {
      grown(m, t) = buffer_(m, t);
    }
    for (std::size_t t = 0; t < chunk.cols(); ++t) {
      grown(m, buffered_cols_ + t) = chunk(m, t);
    }
  }
  buffer_ = std::move(grown);
  buffered_cols_ += chunk.cols();

  auto out = run(/*final_pass=*/false);
  trim();
  return out;
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::flush() {
  auto out = run(/*final_pass=*/true);
  base_ += buffered_cols_;
  buffer_ = CMat(buffer_.rows(), 0);
  buffered_cols_ = 0;
  return out;
}

std::vector<StreamingReceiver::StreamPacket> StreamingReceiver::run(
    bool final_pass) {
  std::vector<StreamPacket> out;
  if (buffered_cols_ < kPreambleLen + kSymbolLen) return out;

  CMat view(buffer_.rows(), buffered_cols_);
  for (std::size_t m = 0; m < buffer_.rows(); ++m) {
    for (std::size_t t = 0; t < buffered_cols_; ++t) view(m, t) = buffer_(m, t);
  }
  for (auto& pkt : ap_.receive(view)) {
    const std::size_t abs_start = base_ + pkt.detection.start;
    if (abs_start < emit_watermark_) continue;  // already emitted

    // A successful decode proves the whole packet was in the buffer (the
    // PHY checks the SIGNAL length fits and the MAC FCS verifies), so it
    // is emitted immediately. A failed decode may just mean the packet
    // is still arriving: retry until max_packet_samples have accumulated
    // past the detection, then emit it as genuinely undecodable.
    const std::size_t projected_end =
        pkt.detection.start +
        (pkt.phy ? pkt.phy->samples_consumed : kPreambleLen + kSymbolLen);
    if (!final_pass && !pkt.phy &&
        pkt.detection.start + config_.max_packet_samples > buffered_cols_) {
      continue;
    }
    emit_watermark_ = base_ + projected_end;
    out.push_back({abs_start, std::move(pkt)});
  }
  return out;
}

void StreamingReceiver::trim() {
  if (buffered_cols_ <= config_.history_samples) return;
  const std::size_t drop = buffered_cols_ - config_.history_samples;
  CMat kept(buffer_.rows(), config_.history_samples);
  for (std::size_t m = 0; m < buffer_.rows(); ++m) {
    for (std::size_t t = 0; t < config_.history_samples; ++t) {
      kept(m, t) = buffer_(m, drop + t);
    }
  }
  buffer_ = std::move(kept);
  buffered_cols_ = config_.history_samples;
  base_ += drop;
}

}  // namespace sa
