#include "sa/secure/virtualfence.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"

namespace sa {

namespace {

double rms_residual_deg(const std::vector<Vec2>& origins,
                        const std::vector<double>& bearings_deg, Vec2 p) {
  double acc = 0.0;
  for (std::size_t i = 0; i < origins.size(); ++i) {
    const double implied = bearing_deg(origins[i], p);
    const double d = angular_distance_deg(implied, bearings_deg[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(origins.size()));
}

}  // namespace

namespace {

/// Best candidate-combination solve over a fixed observation set.
std::optional<LocalizationResult> localize_fixed(
    const std::vector<FenceObservation>& observations) {
  // Enumerate candidate combinations (2^k for k linear-array APs; tiny).
  std::size_t combos = 1;
  for (const auto& o : observations) combos *= o.world_bearings_deg.size();
  SA_EXPECTS(combos <= 1024);

  std::optional<LocalizationResult> best;
  for (std::size_t c = 0; c < combos; ++c) {
    std::vector<Vec2> origins;
    std::vector<double> bearings_deg;
    std::vector<double> bearings_rad;
    std::size_t rem = c;
    for (const auto& o : observations) {
      const std::size_t pick = rem % o.world_bearings_deg.size();
      rem /= o.world_bearings_deg.size();
      origins.push_back(o.ap_position);
      bearings_deg.push_back(o.world_bearings_deg[pick]);
      bearings_rad.push_back(deg2rad(o.world_bearings_deg[pick]));
    }
    const auto p = intersect_bearings(origins, bearings_rad);
    if (!p) continue;
    // Reject solutions behind the APs (negative range along a bearing).
    bool forward = true;
    for (std::size_t i = 0; i < origins.size(); ++i) {
      const Vec2 d{std::cos(bearings_rad[i]), std::sin(bearings_rad[i])};
      if (dot(*p - origins[i], d) < 0.0) {
        forward = false;
        break;
      }
    }
    if (!forward) continue;
    const double resid = rms_residual_deg(origins, bearings_deg, *p);
    if (!best || resid < best->residual_deg) {
      best = LocalizationResult{*p, resid, observations.size()};
    }
  }
  return best;
}

}  // namespace

std::optional<LocalizationResult> localize(
    const std::vector<FenceObservation>& observations,
    double outlier_residual_deg) {
  if (observations.size() < 2) return std::nullopt;
  for (const auto& o : observations) {
    if (o.world_bearings_deg.empty()) return std::nullopt;
  }

  // Greedy outlier rejection: while the fit is missing or inconsistent
  // and more than two APs remain, drop the AP whose removal most
  // improves the residual. A reflection-induced false bearing at one AP
  // does not intersect the others' bearings (it may even place the
  // solution behind an AP, making the full solve fail outright), so it
  // is exactly the one removed.
  std::vector<FenceObservation> working = observations;
  std::optional<LocalizationResult> best = localize_fixed(working);
  while (working.size() > 2 &&
         (!best || best->residual_deg > outlier_residual_deg)) {
    std::optional<LocalizationResult> improved;
    std::size_t drop = working.size();
    for (std::size_t skip = 0; skip < working.size(); ++skip) {
      std::vector<FenceObservation> subset;
      for (std::size_t i = 0; i < working.size(); ++i) {
        if (i != skip) subset.push_back(working[i]);
      }
      const auto cand = localize_fixed(subset);
      if (cand && (!improved || cand->residual_deg < improved->residual_deg)) {
        improved = cand;
        drop = skip;
      }
    }
    if (!improved) break;
    if (best && improved->residual_deg >= best->residual_deg) break;
    working.erase(working.begin() + static_cast<std::ptrdiff_t>(drop));
    best = improved;
  }
  return best;
}

VirtualFence::VirtualFence(Polygon boundary, double max_residual_deg)
    : boundary_(std::move(boundary)), max_residual_deg_(max_residual_deg) {
  SA_EXPECTS(max_residual_deg_ > 0.0);
}

FenceDecision VirtualFence::check(
    const std::vector<FenceObservation>& observations) const {
  if (observations.size() < 2) {
    FenceDecision d;
    d.reason = "need >= 2 AP observations";
    return d;
  }
  return check_localized(localize(observations));
}

FenceDecision VirtualFence::check_localized(
    std::optional<LocalizationResult> location) const {
  FenceDecision d;
  d.location = location;
  if (!d.location) {
    d.reason = "localization failed (parallel or inconsistent bearings)";
    return d;
  }
  if (d.location->residual_deg > max_residual_deg_) {
    d.reason = "bearing residual too large";
    return d;
  }
  if (!boundary_.contains(d.location->position)) {
    d.reason = "outside fence";
    return d;
  }
  d.allowed = true;
  d.reason = "inside fence";
  return d;
}

}  // namespace sa
