#include "sa/secure/coordinator.hpp"

#include "sa/common/error.hpp"

namespace sa {

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)), spoof_(config_.tracker) {
  if (config_.fence_boundary) {
    fence_.emplace(*config_.fence_boundary, config_.fence_max_residual_deg);
  }
}

FrameDecision Coordinator::process(
    const std::vector<ApObservation>& observations) {
  SA_EXPECTS(!observations.empty());
  ++stats_.frames;
  FrameDecision d;

  // The frame content: take it from the AP with the strongest detection
  // (they all heard the same transmission; the best SNR copy is the one
  // whose PHY decode and signature are most trustworthy).
  const ApObservation* best = &observations.front();
  for (const auto& o : observations) {
    if (o.packet.detection.fine_peak > best->packet.detection.fine_peak) {
      best = &o;
    }
  }
  if (!best->packet.frame) {
    d.action = FrameAction::kDropUndecodable;
    d.detail = "no AP decoded a valid frame (FCS)";
    ++stats_.dropped_undecodable;
    return d;
  }
  d.source = best->packet.frame->addr2;

  // ---- Spoof check on the best AP's signature.
  const SpoofObservation so =
      spoof_.observe(*d.source, best->packet.signature);
  d.spoof = so.verdict;
  d.spoof_score = so.score;
  if (so.verdict == SpoofVerdict::kSpoof) {
    d.action = FrameAction::kDropSpoof;
    d.detail = "signature diverges from the trained reference";
    ++stats_.dropped_spoof;
    return d;
  }

  // ---- Fence check from every AP's bearing candidates.
  if (fence_) {
    if (observations.size() < config_.min_aps_for_fence) {
      if (!config_.fence_fail_open) {
        d.action = FrameAction::kDropFence;
        d.detail = "too few APs heard the frame to localize it";
        ++stats_.dropped_fence;
        return d;
      }
    } else {
      std::vector<FenceObservation> obs;
      obs.reserve(observations.size());
      for (const auto& o : observations) {
        obs.push_back({o.ap_position, o.packet.bearing_world_deg});
      }
      const FenceDecision fd = fence_->check(obs);
      d.location = fd.location;
      if (!fd.allowed) {
        d.action = FrameAction::kDropFence;
        d.detail = fd.reason;
        ++stats_.dropped_fence;
        return d;
      }
    }
  }

  d.action = FrameAction::kAccept;
  d.detail = "accepted";
  ++stats_.accepted;
  return d;
}

}  // namespace sa
