#include "sa/secure/coordinator.hpp"

#include <utility>

#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"

namespace sa {

namespace {

PolicyChain build_chain(const CoordinatorConfig& config) {
  PolicyChain chain;
  chain.add(std::make_unique<DecodePolicy>());
  for (const PolicyKind kind : config.policies) {
    switch (kind) {
      case PolicyKind::kAcl:
        SA_EXPECTS(config.acl.has_value());
        chain.add(std::make_unique<AclPolicy>(*config.acl));
        break;
      case PolicyKind::kFence:
        if (config.fence_boundary) {
          chain.add(std::make_unique<FencePolicy>(
              VirtualFence(*config.fence_boundary,
                           config.fence_max_residual_deg),
              config.min_aps_for_fence, config.fence_fail_open));
        }
        break;
      case PolicyKind::kSpoof:
        chain.add(std::make_unique<SpoofPolicy>());
        break;
      case PolicyKind::kRateLimit:
        chain.add(std::make_unique<RateLimitPolicy>(config.rate_limit));
        break;
    }
  }
  return chain;
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      chain_(build_chain(config_)),
      wants_spoof_(chain_.contains(SpoofPolicy::kName)),
      spoof_(config_.tracker, config_.max_tracked_macs,
             config_.spoof_idle_frames) {}

Coordinator::Coordinator(CoordinatorConfig config, PolicyChain chain)
    : config_(std::move(config)),
      chain_(std::move(chain)),
      wants_spoof_(chain_.contains(SpoofPolicy::kName)),
      spoof_(config_.tracker, config_.max_tracked_macs,
             config_.spoof_idle_frames) {}

const ApObservation& Coordinator::best_observation(
    const std::vector<ApObservation>& observations) {
  SA_EXPECTS(!observations.empty());
  const ApObservation* best = &observations.front();
  for (const auto& o : observations) {
    if (o.packet.detection.fine_peak > best->packet.detection.fine_peak) {
      best = &o;
    }
  }
  return *best;
}

FrameDecision Coordinator::process(
    const std::vector<ApObservation>& observations) {
  const ApObservation& best = best_observation(observations);
  // The spoof judge observes every decodable frame — training advances
  // even when another policy later drops the frame, exactly as the
  // engine's pre-judged path behaves.
  std::optional<SpoofObservation> so;
  if (wants_spoof_ && best.packet.frame) {
    so = spoof_.observe(best.packet.frame->addr2, best.packet.subband);
  }
  // The serial chain's processed count is the global frame index (the
  // same value decide() hands the FrameContext below).
  const std::uint64_t sequence = chain_.frames();
  FrameDecision decision = decide(observations, best, so);
  if (capture_ != nullptr && !capture_->closed()) {
    capture_->record_decision(sequence, best.packet.detection.start, decision);
  }
  return decision;
}

FrameDecision Coordinator::process_prejudged(
    const std::vector<ApObservation>& observations,
    const std::optional<SpoofObservation>& spoof) {
  const ApObservation& best = best_observation(observations);
  if (wants_spoof_) {
    SA_EXPECTS(spoof.has_value() == best.packet.frame.has_value());
  }
  return decide(observations, best, spoof);
}

FrameDecision Coordinator::process_prejudged(
    const std::vector<ApObservation>& observations,
    const std::optional<SpoofObservation>& spoof, std::size_t frame_index) {
  const ApObservation& best = best_observation(observations);
  if (wants_spoof_) {
    SA_EXPECTS(spoof.has_value() == best.packet.frame.has_value());
  }
  FrameContext ctx(observations, best, frame_index, spoof);
  return chain_.run(ctx);
}

FrameDecision Coordinator::decide(
    const std::vector<ApObservation>& observations, const ApObservation& best,
    const std::optional<SpoofObservation>& spoof) {
  // A serial chain's processed count *is* the global frame index.
  FrameContext ctx(observations, best, chain_.frames(), spoof);
  return chain_.run(ctx);
}

Coordinator::Stats Coordinator::stats() const {
  Stats s;
  s.frames = chain_.frames();
  s.accepted = chain_.accepted();
  s.dropped_fence = chain_.drops(FencePolicy::kName);
  s.dropped_spoof = chain_.drops(SpoofPolicy::kName);
  s.dropped_undecodable = chain_.drops(DecodePolicy::kName);
  s.dropped_policy = s.frames - s.accepted - s.dropped_fence -
                     s.dropped_spoof - s.dropped_undecodable;
  return s;
}

}  // namespace sa
