#include "sa/secure/coordinator.hpp"

#include "sa/common/error.hpp"

namespace sa {

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)), spoof_(config_.tracker) {
  if (config_.fence_boundary) {
    fence_.emplace(*config_.fence_boundary, config_.fence_max_residual_deg);
  }
}

const ApObservation& Coordinator::best_observation(
    const std::vector<ApObservation>& observations) {
  SA_EXPECTS(!observations.empty());
  const ApObservation* best = &observations.front();
  for (const auto& o : observations) {
    if (o.packet.detection.fine_peak > best->packet.detection.fine_peak) {
      best = &o;
    }
  }
  return *best;
}

FrameDecision Coordinator::process(
    const std::vector<ApObservation>& observations) {
  const ApObservation& best = best_observation(observations);
  std::optional<SpoofObservation> so;
  if (best.packet.frame) {
    so = spoof_.observe(best.packet.frame->addr2, best.packet.signature);
  }
  return decide(observations, best, so);
}

FrameDecision Coordinator::process_prejudged(
    const std::vector<ApObservation>& observations,
    const std::optional<SpoofObservation>& spoof) {
  const ApObservation& best = best_observation(observations);
  SA_EXPECTS(spoof.has_value() == best.packet.frame.has_value());
  return decide(observations, best, spoof);
}

FrameDecision Coordinator::decide(
    const std::vector<ApObservation>& observations, const ApObservation& best,
    const std::optional<SpoofObservation>& spoof) {
  ++stats_.frames;
  FrameDecision d;

  if (!best.packet.frame) {
    d.action = FrameAction::kDropUndecodable;
    d.detail = "no AP decoded a valid frame (FCS)";
    ++stats_.dropped_undecodable;
    return d;
  }
  d.source = best.packet.frame->addr2;

  // ---- Spoof check on the best AP's signature.
  d.spoof = spoof->verdict;
  d.spoof_score = spoof->score;
  if (spoof->verdict == SpoofVerdict::kSpoof) {
    d.action = FrameAction::kDropSpoof;
    d.detail = "signature diverges from the trained reference";
    ++stats_.dropped_spoof;
    return d;
  }

  // ---- Fence check from every AP's bearing candidates.
  if (fence_) {
    if (observations.size() < config_.min_aps_for_fence) {
      if (!config_.fence_fail_open) {
        d.action = FrameAction::kDropFence;
        d.detail = "too few APs heard the frame to localize it";
        ++stats_.dropped_fence;
        return d;
      }
    } else {
      std::vector<FenceObservation> obs;
      obs.reserve(observations.size());
      for (const auto& o : observations) {
        obs.push_back({o.ap_position, o.packet.bearing_world_deg});
      }
      const FenceDecision fd = fence_->check(obs);
      d.location = fd.location;
      if (!fd.allowed) {
        d.action = FrameAction::kDropFence;
        d.detail = fd.reason;
        ++stats_.dropped_fence;
        return d;
      }
    }
  }

  d.action = FrameAction::kAccept;
  d.detail = "accepted";
  ++stats_.accepted;
  return d;
}

}  // namespace sa
