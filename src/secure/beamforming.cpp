#include "sa/secure/beamforming.hpp"

#include <cmath>

#include "sa/common/error.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

CVec aoa_beamforming_weights(const ArrayGeometry& geom, double bearing_deg,
                             double lambda_m) {
  CVec w = conjugate(geom.steering_vector(bearing_deg, lambda_m));
  scale(w, cd{1.0 / std::sqrt(static_cast<double>(w.size())), 0.0});
  return w;
}

CVec mrt_weights(const CVec& channel) {
  SA_EXPECTS(!channel.empty());
  CVec w = conjugate(channel);
  const double n = norm(w);
  SA_EXPECTS(n > 0.0);
  scale(w, cd{1.0 / n, 0.0});
  return w;
}

CVec null_steering_weights(const ArrayGeometry& geom, double target_deg,
                           const std::vector<double>& null_degs,
                           double lambda_m) {
  SA_EXPECTS(null_degs.size() < geom.size());
  CVec w = conjugate(geom.steering_vector(target_deg, lambda_m));

  // Orthonormal basis of the nulls' conjugate steering span, then
  // project the target vector onto its complement: y = h^T w = 0 at a
  // null bearing iff w is orthogonal (Hermitian sense) to conj(a(null)).
  std::vector<CVec> basis;
  for (double nd : null_degs) {
    CVec v = conjugate(geom.steering_vector(nd, lambda_m));
    for (const CVec& b : basis) {
      axpy(v, -inner(b, v), b);
    }
    const double n = norm(v);
    if (n > 1e-9) {
      scale(v, cd{1.0 / n, 0.0});
      basis.push_back(std::move(v));
    }
  }
  for (const CVec& b : basis) {
    axpy(w, -inner(b, w), b);
  }
  const double n = norm(w);
  if (n < 1e-6 * std::sqrt(static_cast<double>(w.size()))) {
    throw InvalidArgument(
        "null_steering_weights: target bearing lies in the null subspace");
  }
  scale(w, cd{1.0 / n, 0.0});
  return w;
}

double downlink_amplitude(const CVec& channel, const CVec& weights) {
  SA_EXPECTS(channel.size() == weights.size());
  cd acc{0.0, 0.0};
  for (std::size_t m = 0; m < channel.size(); ++m) {
    acc += channel[m] * weights[m];
  }
  return std::abs(acc);
}

double downlink_gain_db(const CVec& channel, const CVec& weights) {
  SA_EXPECTS(!channel.empty());
  const double with_bf = downlink_amplitude(channel, weights);
  const double single = std::abs(channel[0]);
  if (single <= 0.0) return 300.0;
  return amplitude_db(with_bf / single);
}

double array_factor_db(const ArrayGeometry& geom, const CVec& weights,
                       double bearing_deg, double lambda_m) {
  const CVec a = geom.steering_vector(bearing_deg, lambda_m);
  // Free-space "channel" toward that bearing is just the steering vector.
  const double amp = downlink_amplitude(a, weights);
  return amplitude_db(std::max(amp, 1e-15));
}

}  // namespace sa
