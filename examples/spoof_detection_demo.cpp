// Spoof detection demo (paper Sec. 2.3.2): a laptop associates with the
// AP and transmits normally; later an attacker forges its MAC address
// from across the office. The address-based ACL admits both; the AoA
// signature check flags the forgeries.
//
// Run:  ./build/examples/spoof_detection_demo
#include <cstdio>

#include "sa/common/rng.hpp"
#include "sa/mac/acl.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

using namespace sa;

int main() {
  const auto tb = OfficeTestbed::figure4();
  Rng rng(7);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  AccessPointConfig cfg;
  cfg.position = tb.ap_position();
  AccessPoint ap(cfg, rng);
  sim.add_ap(ap.placement());

  // The weak baseline: a MAC ACL. The attacker's spoofed frames pass it.
  AccessControlList acl;
  const auto victim_mac = MacAddress::parse("02:5a:00:00:00:2a");
  acl.allow(victim_mac);

  SpoofDetector detector;
  const Vec2 victim_pos = tb.client(2).position;
  const Vec2 attacker_pos = tb.client(17).position;  // far corner office

  auto send = [&](Vec2 from, int seq) {
    const Frame f = Frame::data(MacAddress::from_index(0xFF), victim_mac,
                                Bytes{'p', 'k', 't'},
                                static_cast<std::uint16_t>(seq));
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    return ap.receive(sim.transmit(from, w)[0]);
  };

  std::printf("%-5s %-24s %-8s %-10s %-8s %s\n", "seq", "true sender", "ACL",
              "signature", "score", "note");
  int seq = 0;
  auto report = [&](const char* sender, Vec2 from, const char* note) {
    const auto pkts = send(from, seq);
    if (pkts.empty() || !pkts[0].frame) {
      std::printf("%-5d %-24s (packet lost)\n", seq, sender);
      ++seq;
      return;
    }
    const bool acl_ok = acl.is_allowed(pkts[0].frame->addr2);
    const auto obs = detector.observe(pkts[0].frame->addr2, pkts[0].signature);
    const char* verdict = obs.verdict == SpoofVerdict::kTraining ? "training"
                          : obs.verdict == SpoofVerdict::kLegitimate
                              ? "PASS"
                              : "SPOOF!";
    std::printf("%-5d %-24s %-8s %-10s %-8.2f %s\n", seq, sender,
                acl_ok ? "admit" : "reject", verdict, obs.score, note);
    ++seq;
    sim.advance(0.5);
  };

  std::printf("--- victim associates and sends traffic\n");
  for (int i = 0; i < 8; ++i) {
    report("victim laptop", victim_pos, i < 5 ? "(learning S_cl)" : "");
  }

  std::printf("--- attacker forges the victim's MAC from the far office\n");
  for (int i = 0; i < 5; ++i) {
    report("ATTACKER (spoofed MAC)", attacker_pos,
           "ACL is fooled; the signature is not");
  }

  std::printf("--- victim keeps transmitting\n");
  for (int i = 0; i < 3; ++i) {
    report("victim laptop", victim_pos, "");
  }

  const auto st = detector.stats();
  std::printf("\nsummary: %zu packets observed, %zu spoof alarms raised\n",
              st.packets, st.alarms);
  return 0;
}
