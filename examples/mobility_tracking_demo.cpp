// Mobility tracking demo — the paper's future work ("test our
// applications with client mobility and track the mobility trace with
// multiple APs", Sec. 5), built on the same public API.
//
// A client walks a straight line through the office at ~1 m/s, beaconing
// every 200 ms; three APs triangulate each beacon and the demo prints
// the estimated trace against the true one.
//
// Run:  ./build/examples/mobility_tracking_demo
#include <cstdio>
#include <memory>

#include "sa/common/rng.hpp"
#include "sa/common/stats.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/virtualfence.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

using namespace sa;

int main() {
  const auto tb = OfficeTestbed::figure4();
  Rng rng(2025);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  std::vector<std::unique_ptr<AccessPoint>> aps;
  for (const Vec2 pos : {tb.ap_position(), tb.extra_ap_positions()[1],
                         tb.extra_ap_positions()[2]}) {
    AccessPointConfig cfg;
    cfg.position = pos;
    aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    sim.add_ap(aps.back()->placement());
  }

  // Walk from the south-west of the AP's room to the north-east.
  const Vec2 start{9.0, 5.0};
  const Vec2 end{19.0, 11.0};
  const int steps = 20;
  const double step_period_s = 0.2;

  const Frame frame = Frame::data(MacAddress::from_index(0xFF),
                                  MacAddress::from_index(55), Bytes{'b'}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());

  std::printf("%-6s %-16s %-16s %10s\n", "t(s)", "true position",
              "estimate", "err(m)");
  std::vector<double> errors;
  for (int i = 0; i <= steps; ++i) {
    const double frac = static_cast<double>(i) / steps;
    const Vec2 pos = start + (end - start) * frac;
    const auto rx = sim.transmit(pos, wave);
    std::vector<FenceObservation> obs;
    for (std::size_t a = 0; a < aps.size(); ++a) {
      const auto pkts = aps[a]->receive(rx[a]);
      if (!pkts.empty()) {
        obs.push_back({aps[a]->config().position, pkts[0].bearing_world_deg});
      }
    }
    const auto loc = localize(obs);
    if (loc) {
      const double err = distance(loc->position, pos);
      errors.push_back(err);
      std::printf("%-6.1f (%5.2f, %5.2f)   (%5.2f, %5.2f) %10.2f\n",
                  i * step_period_s, pos.x, pos.y, loc->position.x,
                  loc->position.y, err);
    } else {
      std::printf("%-6.1f (%5.2f, %5.2f)   %-16s %10s\n", i * step_period_s,
                  pos.x, pos.y, "(no fix)", "-");
    }
    sim.advance(step_period_s);
  }

  if (!errors.empty()) {
    std::printf("\ntrace statistics: mean error %.2f m, median %.2f m, "
                "worst %.2f m over %zu fixes\n",
                mean(errors), median(errors), max_of(errors), errors.size());
  }
  std::printf("Note: each beacon position is a *new* multipath channel —\n"
              "no state is shared between fixes, so this is the honest\n"
              "single-packet localization accuracy along a walk.\n");
  return 0;
}
