// Virtual fence demo (paper Sec. 2.3.1): three APs in the Figure-4
// office triangulate every transmitter from direct-path AoA and drop
// frames that localize outside the building — including a war-driving
// attacker in the parking lot with a high-gain directional antenna.
//
// Run:  ./build/examples/virtual_fence_demo
#include <cstdio>
#include <memory>

#include "sa/common/rng.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/virtualfence.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

using namespace sa;

namespace {

std::vector<FenceObservation> observe(
    UplinkSimulation& sim, std::vector<std::unique_ptr<AccessPoint>>& aps,
    Vec2 from, const CVec& wave, const TxPattern* pattern) {
  const auto rx = sim.transmit(from, wave, pattern);
  std::vector<FenceObservation> obs;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    const auto pkts = aps[i]->receive(rx[i]);
    if (!pkts.empty()) {
      obs.push_back({aps[i]->config().position, pkts[0].bearing_world_deg});
    }
  }
  return obs;
}

}  // namespace

int main() {
  const auto tb = OfficeTestbed::figure4();
  Rng rng(99);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  std::vector<std::unique_ptr<AccessPoint>> aps;
  for (const Vec2 pos : {tb.ap_position(), tb.extra_ap_positions()[1],
                         tb.extra_ap_positions()[2]}) {
    AccessPointConfig cfg;
    cfg.position = pos;
    aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    sim.add_ap(aps.back()->placement());
    std::printf("AP online at (%.0f, %.0f)\n", pos.x, pos.y);
  }

  const VirtualFence fence(tb.building_outline());
  const Frame frame =
      Frame::data(MacAddress::from_index(0xFF), MacAddress::from_index(1),
                  Bytes{'d', 'a', 't', 'a'}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());

  std::printf("\n%-34s %-9s %-22s %s\n", "transmitter", "decision", "location",
              "reason");

  // A few legitimate indoor clients.
  for (int id : {1, 5, 13, 16, 20}) {
    const auto& c = tb.client(id);
    const auto obs = observe(sim, aps, c.position, wave, nullptr);
    const auto d = fence.check(obs);
    char where[32] = "-";
    if (d.location) {
      std::snprintf(where, sizeof(where), "(%.1f, %.1f) err %.1fm",
                    d.location->position.x, d.location->position.y,
                    distance(d.location->position, c.position));
    }
    char who[64];
    std::snprintf(who, sizeof(who), "client %d at (%.1f, %.1f)", id,
                  c.position.x, c.position.y);
    std::printf("%-34s %-9s %-22s %.*s\n", who, d.allowed ? "ALLOW" : "DROP",
                where, static_cast<int>(d.reason.size()), d.reason.data());
    sim.advance(0.2);
  }

  // The parking-lot attacker with a directional antenna and a power amp.
  const Vec2 attacker = tb.outdoor_positions()[0];
  TxPattern beam;
  beam.aim_azimuth_deg = bearing_deg(attacker, tb.ap_position());
  beam.beamwidth_deg = 25.0;
  beam.boresight_gain_db = 15.0;
  beam.tx_power_db = 12.0;
  const auto obs = observe(sim, aps, attacker, wave, &beam);
  const auto d = fence.check(obs);
  char where[32] = "-";
  if (d.location) {
    std::snprintf(where, sizeof(where), "(%.1f, %.1f)", d.location->position.x,
                  d.location->position.y);
  }
  char who[64];
  std::snprintf(who, sizeof(who), "ATTACKER outside at (%.0f, %.0f)",
                attacker.x, attacker.y);
  std::printf("%-34s %-9s %-22s %.*s\n", who, d.allowed ? "ALLOW" : "DROP",
              where, static_cast<int>(d.reason.size()), d.reason.data());

  std::printf("\nThe fence admits indoor clients (localized to ~1 m) and\n"
              "drops the off-site transmitter even though its directional\n"
              "antenna delivers plenty of signal power: AoA geometry, not\n"
              "received strength, makes the decision.\n");
  return 0;
}
