// Scenario runner: a small CLI over the full SecureAngle system. Builds
// the Figure-4 office with a configurable multi-AP deployment, runs a
// mixed workload (legitimate uplink traffic + MAC-spoofing attacker +
// off-site transmitter), routes every frame through the Coordinator
// (fence + spoof defenses), and prints a security report.
//
// Usage: scenario_runner [seed] [packets-per-client] [num-aps(1-4)]
// e.g.:  ./build/examples/scenario_runner 7 12 3
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sa/common/rng.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/coordinator.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

using namespace sa;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const int packets = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::size_t num_aps =
      argc > 3 ? std::min(std::strtoul(argv[3], nullptr, 10), 4ul) : 3;
  if (packets < 1 || num_aps < 1) {
    std::fprintf(stderr, "usage: %s [seed] [packets>=1] [num-aps 1-4]\n",
                 argv[0]);
    return 2;
  }

  const auto tb = OfficeTestbed::figure4();
  Rng rng(seed);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  std::vector<std::unique_ptr<AccessPoint>> aps;
  // Order mounts by coverage quality: the NW/NE points see most of the
  // office; the SW mount sits behind the pillar for several clients.
  std::vector<Vec2> spots{tb.ap_position(), tb.extra_ap_positions()[2],
                          tb.extra_ap_positions()[1],
                          tb.extra_ap_positions()[0]};
  for (std::size_t i = 0; i < num_aps; ++i) {
    AccessPointConfig cfg;
    cfg.position = spots[i];
    aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    sim.add_ap(aps.back()->placement());
  }
  std::printf("deployment: %zu AP(s), seed %llu, %d packets/client\n",
              num_aps, static_cast<unsigned long long>(seed), packets);

  CoordinatorConfig ccfg;
  ccfg.fence_boundary = tb.building_outline();
  ccfg.min_aps_for_fence = 2;
  Coordinator coord(ccfg);

  std::uint16_t seq = 0;
  auto send = [&](Vec2 from, MacAddress mac, const TxPattern* pat)
      -> std::vector<ApObservation> {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    const auto rx = sim.transmit(from, w, pat);
    std::vector<ApObservation> obs;
    for (std::size_t i = 0; i < aps.size(); ++i) {
      for (auto& pkt : aps[i]->receive(rx[i])) {
        obs.push_back({aps[i]->config().position, std::move(pkt)});
      }
    }
    sim.advance(0.25);
    return obs;
  };

  // Phase 1: every client associates and sends `packets` frames.
  int accepted = 0, dropped = 0;
  for (int p = 0; p < packets; ++p) {
    for (const auto& c : tb.clients()) {
      const auto obs = send(c.position, MacAddress::from_index(c.id), nullptr);
      if (obs.empty()) continue;
      const auto d = coord.process(obs);
      (d.action == FrameAction::kAccept ? accepted : dropped)++;
    }
  }
  std::printf("\nphase 1 — legitimate traffic: %d accepted, %d dropped "
              "(%.1f%% false drop)\n",
              accepted, dropped,
              100.0 * dropped / std::max(accepted + dropped, 1));

  // Phase 2: an insider spoofs client 2's MAC from the far office.
  int spoof_caught = 0, spoof_missed = 0;
  for (int p = 0; p < packets; ++p) {
    const auto obs =
        send(tb.client(17).position, MacAddress::from_index(2), nullptr);
    if (obs.empty()) continue;
    const auto d = coord.process(obs);
    (d.action == FrameAction::kDropSpoof ? spoof_caught : spoof_missed)++;
  }
  std::printf("phase 2 — MAC spoofing insider: %d/%d forged frames dropped\n",
              spoof_caught, spoof_caught + spoof_missed);

  // Phase 3: off-site transmitter with a power amp.
  TxPattern amp;
  amp.tx_power_db = 15.0;
  int fence_drops = 0, outdoor_frames = 0;
  for (int p = 0; p < packets; ++p) {
    const auto obs =
        send(tb.outdoor_positions()[0], MacAddress::from_index(200), &amp);
    if (obs.empty()) continue;  // not even heard: no access anyway
    ++outdoor_frames;
    // Fail-closed fence: frames heard by too few APs to localize are
    // dropped rather than waved through.
    const auto d = coord.process(obs);
    if (d.action != FrameAction::kAccept) ++fence_drops;
  }
  std::printf("phase 3 — off-site transmitter: %d/%d frames denied\n",
              fence_drops, outdoor_frames);

  const auto& st = coord.stats();
  std::printf("\ncoordinator totals: %zu frames | %zu accepted | %zu fence "
              "drops | %zu spoof drops | %zu undecodable\n",
              st.frames, st.accepted, st.dropped_fence, st.dropped_spoof,
              st.dropped_undecodable);
  return 0;
}
