// Scenario runner: a CLI over the full SecureAngle system. Builds the
// Figure-4 office with a configurable multi-AP deployment, runs a
// selectable traffic scenario (sa/sim/scenario.hpp) — benign, bursty,
// mobile, adversarial or overload — streams every AP's samples through
// the engine, and prints a security report with per-policy statistics.
// With --capture the whole run (chunk streams, decisions, drain
// boundaries) is recorded to a SACP file that capture_tool can inspect
// and replay bit-exactly.
//
// Two modes:
//  - batch (default): the three-phase scripted workload through the
//    lock-step DeploymentEngine, one ingest round per transmission.
//  - streaming (--duration or --scenario): scenario-driven arrivals
//    pushed into an EngineSession for a simulated wall-clock span —
//    chunks go in as they "arrive" while earlier rounds are still
//    deciding, with periodic interval reports (the final, partial
//    interval included).
//
// Usage: scenario_runner [options] [seed [packets [num-aps]]]
//   --seed N            RNG seed                       (default 7)
//   --packets N         frames per client per phase    (default 10)
//   --aps N             access points, any count >= 1  (default 3)
//   --antennas N        per-AP antennas; 8 = the paper's octagon,
//                       anything else a circular array (default 8)
//   --threads N         engine worker threads, 0=auto  (default 1)
//   --estimator NAME    music|capon|bartlett|root-music|esprit
//   --subbands K        wideband subbands per packet, power of two
//   --band-fusion F     uniform|snr wideband signature fusion
//   --policies LIST     comma-separated from acl,fence,spoof,rate
//   --scenario NAME     office|mmpp|flash-crowd|mobile|adaptive-spoof|
//                       flood — selects streaming mode
//   --duration S        streaming mode: simulated seconds of traffic
//   --arrival-rate R    streaming mode: mean frame arrivals/sec
//   --report-interval S streaming mode: seconds between interval
//                       reports (default 0.5)
//   --capture PATH      record the run as a SACP capture
//   --fleet-sites N     fleet mode: N >= 2 sites under a
//                       FleetCoordinator running the roaming scenario,
//                       with cross-site handoff on every site change;
//                       --threads becomes threads per site and --capture
//                       records one version-2 fleet capture
//   --fleet-stride N    per-site seed stride (0 = identical sites)
//   --fault-plan SPEC   fleet mode: inject transport faults into the
//                       handoff channel (FaultPlan string, e.g.
//                       "seed=3,drop=0.25,corrupt=0.05"); the capture
//                       becomes version 3 and records the plan plus
//                       per-migration transport verdicts
// e.g.:  ./build/examples/scenario_runner --scenario flood --threads 4
//        ./build/examples/scenario_runner --scenario mmpp --capture run.sacp
//        ./build/examples/scenario_runner --fleet-sites 4 --capture roam.sacp
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "sa/capture/writer.hpp"
#include "sa/fleet/coordinator.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/fft.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/sim/deployment.hpp"
#include "sa/sim/scenario.hpp"

using namespace sa;

namespace {

[[noreturn]] void print_usage(std::FILE* to, const char* argv0, int status) {
  std::fprintf(to,
               "usage: %s [--seed N] [--packets N] [--aps N] [--antennas N]\n"
               "          [--threads N]\n"
               "          [--estimator music|capon|bartlett|root-music|esprit]\n"
               "          [--subbands K] [--band-fusion uniform|snr]\n"
               "          [--policies acl,fence,spoof,rate]\n"
               "          [--scenario %s]\n"
               "          [--duration S] [--arrival-rate R]\n"
               "          [--report-interval S] [--capture PATH]\n"
               "          [--fleet-sites N] [--fleet-stride N]\n"
               "          [--fault-plan SPEC]\n"
               "          [seed [packets [num-aps]]]\n",
               argv0, scenario_names());
  std::exit(status);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0, 2);
}

std::vector<PolicyKind> parse_policies(const std::string& list,
                                       const char* argv0) {
  std::vector<PolicyKind> kinds;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const auto kind = policy_kind_from_string(name);
    if (!kind) {
      std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
      usage(argv0);
    }
    kinds.push_back(*kind);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kinds.empty()) usage(argv0);
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  DeploymentSpec spec;
  int packets = 10;
  std::size_t threads = 1;
  std::optional<ScenarioKind> scenario;
  double duration_s = 0.0;      // > 0 selects streaming mode
  double arrival_rate = 40.0;   // mean frames/sec in streaming mode
  double report_interval = 0.5;
  std::string capture_path;
  std::size_t fleet_sites = 0;     // >= 2 selects fleet mode
  std::uint64_t fleet_stride = 1;  // per-site seed stride
  std::string fault_plan_text;     // fleet handoff-channel fault plan

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Every flag accepts both "--flag value" and "--flag=value".
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> const char* {
      if (inline_value) return inline_value->c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      spec.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--packets") {
      packets = std::atoi(value());
    } else if (arg == "--aps") {
      spec.num_aps = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--antennas") {
      spec.antennas = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--estimator") {
      const char* name = value();
      const auto parsed = aoa_backend_from_string(name);
      if (!parsed) {
        std::fprintf(stderr, "unknown estimator '%s' (valid: %s)\n", name,
                     aoa_backend_names());
        usage(argv[0]);
      }
      spec.estimator = *parsed;
    } else if (arg == "--subbands") {
      spec.subbands = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--band-fusion") {
      const char* name = value();
      const auto parsed = band_fusion_from_string(name);
      if (!parsed) {
        std::fprintf(stderr, "unknown band fusion '%s' (valid: uniform, snr)\n",
                     name);
        usage(argv[0]);
      }
      spec.band_fusion = *parsed;
    } else if (arg == "--scenario") {
      const char* name = value();
      scenario = scenario_from_string(name);
      if (!scenario) {
        std::fprintf(stderr, "unknown scenario '%s' (valid: %s)\n", name,
                     scenario_names());
        usage(argv[0]);
      }
    } else if (arg == "--duration") {
      duration_s = std::strtod(value(), nullptr);
    } else if (arg == "--arrival-rate") {
      arrival_rate = std::strtod(value(), nullptr);
    } else if (arg == "--report-interval") {
      report_interval = std::strtod(value(), nullptr);
    } else if (arg == "--capture") {
      capture_path = value();
    } else if (arg == "--fleet-sites") {
      fleet_sites = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--fleet-stride") {
      fleet_stride = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--fault-plan") {
      fault_plan_text = value();
    } else if (arg == "--policies") {
      spec.policies = parse_policies(value(), argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0], 0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      // Legacy positional form: seed packets num-aps.
      switch (positional++) {
        case 0: spec.seed = std::strtoull(arg.c_str(), nullptr, 10); break;
        case 1: packets = std::atoi(arg.c_str()); break;
        case 2: spec.num_aps = std::strtoul(arg.c_str(), nullptr, 10); break;
        default: usage(argv[0]);
      }
    }
  }
  if (packets < 1 || spec.num_aps < 1) usage(argv[0]);
  if (spec.antennas < 2 || spec.antennas > 64) {
    std::fprintf(stderr, "--antennas must be in [2, 64], got %zu\n",
                 spec.antennas);
    usage(argv[0]);
  }
  if (!is_pow2(spec.subbands) || spec.subbands > 64) {
    std::fprintf(stderr,
                 "--subbands must be a power of two in [1, 64], got %zu\n",
                 spec.subbands);
    usage(argv[0]);
  }
  if (scenario && duration_s <= 0.0) duration_s = 2.0;
  if (duration_s < 0.0 || (duration_s > 0.0 && arrival_rate <= 0.0)) {
    std::fprintf(stderr, "--duration needs a positive --arrival-rate\n");
    usage(argv[0]);
  }
  if (duration_s > 0.0 && report_interval <= 0.0) {
    std::fprintf(stderr, "--report-interval must be positive\n");
    usage(argv[0]);
  }

  // ---- Fleet mode: N sites under a FleetCoordinator running the
  // roaming scenario. Walkers wander the fleet; every site change
  // triggers a cross-site handoff before the walker's first frame at
  // the new site. With --capture the whole fleet records one version-2
  // SACP file that replay_fleet_capture can verify byte-for-byte.
  if (fleet_sites > 0) {
    if (fleet_sites < 2) {
      std::fprintf(stderr, "--fleet-sites needs at least 2 sites\n");
      usage(argv[0]);
    }
    if (scenario && *scenario != ScenarioKind::kRoaming) {
      std::fprintf(stderr, "fleet mode only runs the roaming scenario\n");
      usage(argv[0]);
    }
    if (duration_s <= 0.0) duration_s = 2.0;

    std::optional<FaultPlan> fault_plan;
    if (!fault_plan_text.empty()) {
      fault_plan = FaultPlan::parse(fault_plan_text);
      if (!fault_plan) {
        std::fprintf(stderr, "bad --fault-plan \"%s\"\n",
                     fault_plan_text.c_str());
        usage(argv[0]);
      }
    }

    ScenarioConfig sc;
    sc.kind = ScenarioKind::kRoaming;
    sc.arrival_rate = arrival_rate;
    sc.duration_s = duration_s;
    sc.roaming_sites = fleet_sites;
    if (fault_plan) sc.roaming_fault_plan = fault_plan->to_string();

    FleetSpec fspec;
    fspec.site = spec;
    fspec.num_sites = fleet_sites;
    fspec.site_seed_stride = fleet_stride;
    const std::uint64_t idle = roaming_idle_horizon_frames(sc);

    // The generator runs over site 0's testbed and traffic Rng. A
    // sim-less throwaway build gives us both before the writer needs
    // the scenario description (the coordinator rebuilds site 0
    // bit-identically — same seed, same draw order).
    BuiltDeployment proto = build_deployment(site_spec(fspec, 0), false);
    ScenarioGenerator gen(proto.testbed, sc, proto.traffic_rng,
                          spec.estimator);

    std::optional<CaptureWriter> writer;
    if (!capture_path.empty()) {
      CaptureHeader header = fleet_header_for(fspec);
      header.metadata.emplace_back("sa.scenario", gen.describe());
      // Stamp the idle horizon actually applied, so replay re-applies
      // the same expiry timing.
      header.metadata.emplace_back("sa.fleet.spoof_idle",
                                   std::to_string(idle));
      if (fault_plan && fault_plan->active()) {
        // A lossy run is a version-3 capture: the plan rides in the
        // header (replay rebuilds the same channel) and every migration
        // records its transport verdict.
        header.version = kSacpVersionChaos;
        header.metadata.emplace_back("sa.fleet.fault_plan",
                                     fault_plan->to_string());
      }
      writer.emplace(capture_path, std::move(header));
    }

    FleetConfig fc;
    fc.spec = fspec;
    fc.threads_per_site = threads == 0 ? 1 : threads;
    fc.with_sim = true;
    fc.capture = writer ? &*writer : nullptr;
    fc.spoof_idle_frames = static_cast<std::size_t>(idle);
    if (fault_plan) fc.fault_plan = *fault_plan;
    FleetCoordinator fleet(fc);

    std::printf("fleet: %zu site(s) x %zu AP(s), %zu thread(s)/site, "
                "seed stride %llu, spoof idle horizon %llu frames\n",
                fleet.num_sites(), fleet.aps_per_site(), fc.threads_per_site,
                static_cast<unsigned long long>(fleet_stride),
                static_cast<unsigned long long>(idle));
    std::printf("config: %s\n", describe(spec).c_str());
    std::printf("config: %s\n", gen.describe().c_str());

    std::uint16_t sseq = 0;
    std::size_t sent = 0;
    std::vector<std::size_t> site_frames(fleet.num_sites(), 0);
    std::set<MacAddress> seen;
    while (auto ev = gen.next()) {
      // Simulated time passes for every site's channel, not just the
      // one hearing this frame.
      for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
        fleet.deployment(s).sim->advance(ev->dt_s);
      }
      if (seen.insert(ev->mac).second || ev->site_changed) {
        fleet.notify_association(ev->mac, ev->site);
      }
      const Frame f = Frame::data(MacAddress::from_index(0xFF), ev->mac,
                                  Bytes{1, 2, 3}, sseq++);
      const CVec w =
          PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      fleet.submit_round(ev->site,
                         fleet.deployment(ev->site).sim->transmit(
                             ev->from, w, ev->pattern ? &*ev->pattern : nullptr));
      ++sent;
      ++site_frames[ev->site];
    }
    fleet.drain_all();

    std::size_t accepted = 0, dropped = 0;
    for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
      for (const auto& d : fleet.decisions(s)) {
        (d.decision.accepted ? accepted : dropped)++;
      }
    }
    const auto& fs = fleet.stats();
    std::printf("\ntraffic: %zu frames across the fleet\n", sent);
    for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
      std::printf("  site %zu: %zu frames, %zu decisions\n", s, site_frames[s],
                  fleet.decisions(s).size());
    }
    std::printf("decisions: %zu accepted, %zu dropped\n", accepted, dropped);
    std::printf("handoffs: %llu associations, %llu migrations applied, "
                "%llu stale rejected\n",
                static_cast<unsigned long long>(fs.associations),
                static_cast<unsigned long long>(fs.handoffs_applied),
                static_cast<unsigned long long>(fs.handoffs_stale));
    if (fault_plan && fault_plan->active()) {
      const TransportStats ts = fleet.transport_stats();
      std::printf("transport: %llu datagrams (%llu dropped, %llu dup, "
                  "%llu reordered, %llu delayed, %llu corrupted); "
                  "%llu retries, %llu timeouts -> %llu cold starts, "
                  "%llu duplicates suppressed\n",
                  static_cast<unsigned long long>(ts.sent),
                  static_cast<unsigned long long>(ts.dropped),
                  static_cast<unsigned long long>(ts.duplicated),
                  static_cast<unsigned long long>(ts.reordered),
                  static_cast<unsigned long long>(ts.delayed),
                  static_cast<unsigned long long>(ts.corrupted),
                  static_cast<unsigned long long>(fs.retries),
                  static_cast<unsigned long long>(fs.timeouts),
                  static_cast<unsigned long long>(fs.cold_starts),
                  static_cast<unsigned long long>(fs.duplicates_suppressed));
    }
    if (writer) {
      // Recording protocol: the capture ends quiescent (drain_all above),
      // so close the writer before the sessions.
      writer->close();
      std::printf("\ncapture: %s (%llu chunks, %llu decisions, %llu assocs, "
                  "%llu drains)\n",
                  writer->path().c_str(),
                  static_cast<unsigned long long>(writer->chunks_recorded()),
                  static_cast<unsigned long long>(writer->decisions_recorded()),
                  static_cast<unsigned long long>(writer->assocs_recorded()),
                  static_cast<unsigned long long>(writer->drains_recorded()));
    }
    fleet.close();
    return 0;
  }

  BuiltDeployment dep = build_deployment(spec, /*with_sim=*/true);
  const OfficeTestbed& tb = dep.testbed;
  UplinkSimulation& sim = *dep.sim;

  EngineConfig ecfg = dep.engine;
  ecfg.num_threads = threads;

  // ---- Streaming mode: scenario-driven arrivals pushed into an
  // EngineSession. There is no round cadence the caller could batch on:
  // frames arrive whenever the arrival process says, the session
  // pipelines them, and decisions stream out through the sink while
  // later chunks go in.
  if (duration_s > 0.0) {
    ScenarioConfig sc;
    sc.kind = scenario.value_or(ScenarioKind::kOffice);
    sc.arrival_rate = arrival_rate;
    sc.duration_s = duration_s;
    ScenarioGenerator gen(tb, sc, dep.traffic_rng, spec.estimator);

    std::optional<CaptureWriter> writer;
    if (!capture_path.empty()) {
      CaptureHeader header = capture_header_for(spec);
      header.metadata.emplace_back("sa.scenario", gen.describe());
      writer.emplace(capture_path, std::move(header));
      ecfg.capture = &*writer;
    }

    SessionConfig scfg;
    scfg.engine = ecfg;
    std::size_t accepted = 0, dropped = 0;
    EngineSession session(scfg, dep.ap_ptrs, [&](const EngineDecision& d) {
      (d.decision.accepted ? accepted : dropped)++;
    });
    std::printf("streaming deployment: %zu AP(s), %zu engine thread(s)\n",
                spec.num_aps, session.num_threads());
    std::printf("config: %s\n", describe(spec).c_str());
    std::printf("config: %s\n", gen.describe().c_str());

    std::uint16_t sseq = 0;
    std::size_t sent = 0, spoofed = 0, offsite = 0, flooded = 0;
    std::size_t interval_sent = 0;
    double interval_start = 0.0;
    double now = 0.0;
    const auto report_span = [&](double from, double to, bool final_span) {
      std::printf(
          "t=%5.2f..%5.2f%s %5zu frames submitted | decisions so far: "
          "%zu accepted, %zu dropped\n",
          from, to, final_span ? " (final)" : "        ", interval_sent,
          accepted, dropped);
      interval_sent = 0;
    };
    while (auto ev = gen.next()) {
      while (ev->time_s >= interval_start + report_interval) {
        report_span(interval_start, interval_start + report_interval, false);
        interval_start += report_interval;
      }
      now = ev->time_s;
      sim.advance(ev->dt_s);
      switch (ev->kind) {
        case TrafficEvent::Kind::kSpoof: ++spoofed; break;
        case TrafficEvent::Kind::kOffsite: ++offsite; break;
        case TrafficEvent::Kind::kFlood: ++flooded; break;
        case TrafficEvent::Kind::kLegit: break;
      }
      const Frame f = Frame::data(MacAddress::from_index(0xFF), ev->mac,
                                  Bytes{1, 2, 3}, sseq++);
      const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      session.submit_round(
          sim.transmit(ev->from, w, ev->pattern ? &*ev->pattern : nullptr));
      ++sent;
      ++interval_sent;
    }
    session.drain();
    // The horizon rarely lands on an interval boundary: always flush the
    // final, partial interval so its frames are reported too.
    report_span(interval_start, duration_s, true);
    (void)now;

    const auto st = session.stats();
    const auto ss = session.session_stats();
    const auto sp = session.spoof_detector().stats();
    std::printf(
        "\ntraffic: %zu frames sent (%zu spoofed, %zu off-site, %zu flood)\n",
        sent, spoofed, offsite, flooded);
    std::printf("decisions: %zu frames | %zu accepted | %zu dropped\n",
                st.frames, accepted, dropped);
    std::printf("\n%-10s %10s %10s %10s\n", "policy", "evaluated", "accepted",
                "dropped");
    for (const auto& ps : session.chain().policy_stats()) {
      std::printf("%-10.*s %10zu %10zu %10zu\n",
                  static_cast<int>(ps.name.size()), ps.name.data(),
                  ps.evaluated, ps.accepted, ps.dropped);
    }
    std::printf("\nspoof trackers: %zu MAC(s) across %zu shard(s), %zu alarms\n",
                sp.tracked_macs, session.spoof_detector().num_shards(),
                sp.alarms);
    std::printf(
        "pipeline: %zu rounds (%zu data rounds retired), %zu decisions "
        "emitted, max %zu rounds overlapped in the dataplane, %zu candidate "
        "frames in flight at peak, %zu deferred retries\n",
        ss.rounds_completed, ss.rounds_retired, ss.decisions_emitted,
        ss.max_overlapped_rounds, ss.max_inflight_frames, ss.stale_retries);
    std::printf(
        "pipeline: %zu worker jobs in %zu bursts (max burst %zu), "
        "%zu submit-ring blocks, %zu spin polls, %zu parks\n",
        ss.worker_jobs, ss.worker_bursts, ss.max_worker_burst,
        ss.submit_ring_full_blocks, ss.spin_polls, ss.parks);
    if (writer) {
      // Recording protocol: close the writer after the drain and before
      // the session, so the capture ends quiescent.
      writer->close();
      std::printf("\ncapture: %s (%llu chunks, %llu decisions, %llu drains)\n",
                  writer->path().c_str(),
                  static_cast<unsigned long long>(writer->chunks_recorded()),
                  static_cast<unsigned long long>(writer->decisions_recorded()),
                  static_cast<unsigned long long>(writer->drains_recorded()));
    }
    session.close();
    return 0;
  }

  std::optional<CaptureWriter> writer;
  if (!capture_path.empty()) {
    CaptureHeader header = capture_header_for(spec);
    header.metadata.emplace_back("sa.scenario", "batch-three-phase");
    writer.emplace(capture_path, std::move(header));
    ecfg.capture = &*writer;
  }

  DeploymentEngine engine(ecfg, dep.ap_ptrs);

  std::string chain_names = "decode";
  for (std::size_t i = 1; i < engine.chain().size(); ++i) {
    chain_names += "->";
    chain_names += engine.chain().policy(i).name();
  }
  std::printf("deployment: %zu AP(s), %zu engine thread(s), %d packets/client\n",
              spec.num_aps, engine.num_threads(), packets);
  std::printf("config: %s\n", describe(spec).c_str());
  std::printf("policy chain: %s\n", chain_names.c_str());

  std::uint16_t seq = 0;
  auto send = [&](Vec2 from, MacAddress mac,
                  const TxPattern* pat) -> std::vector<EngineDecision> {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    auto decisions = engine.ingest(sim.transmit(from, w, pat));
    sim.advance(0.25);
    return decisions;
  };
  auto drain = [&](std::vector<EngineDecision>& into) {
    for (auto& d : engine.flush()) into.push_back(std::move(d));
  };

  // Phase 1: every client associates and sends `packets` frames.
  int accepted = 0, dropped = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (const auto& c : tb.clients()) {
        for (auto& d :
             send(c.position, MacAddress::from_index(c.id), nullptr)) {
          ds.push_back(std::move(d));
        }
      }
    }
    drain(ds);
    for (const auto& d : ds) (d.decision.accepted ? accepted : dropped)++;
  }
  std::printf("\nphase 1 — legitimate traffic: %d accepted, %d dropped "
              "(%.1f%% false drop)\n",
              accepted, dropped,
              100.0 * dropped / std::max(accepted + dropped, 1));

  // Phase 2: an insider spoofs client 2's MAC from the far office. The
  // ACL waves these through (the MAC is on the list) — only the
  // signature check catches them.
  int spoof_caught = 0, spoof_missed = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (auto& d :
           send(tb.client(17).position, MacAddress::from_index(2), nullptr)) {
        ds.push_back(std::move(d));
      }
    }
    drain(ds);
    for (const auto& d : ds) {
      (d.decision.policy == SpoofPolicy::kName ? spoof_caught
                                               : spoof_missed)++;
    }
  }
  std::printf("phase 2 — MAC spoofing insider: %d/%d forged frames dropped\n",
              spoof_caught, spoof_caught + spoof_missed);

  // Phase 3: off-site transmitter with a power amp. Fail-closed fence:
  // frames heard by too few APs to localize are dropped rather than
  // waved through (and its unknown MAC fails the ACL, when enabled).
  TxPattern amp;
  amp.tx_power_db = 15.0;
  int offsite_drops = 0, outdoor_frames = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (auto& d : send(tb.outdoor_positions()[0],
                          MacAddress::from_index(200), &amp)) {
        ds.push_back(std::move(d));
      }
    }
    drain(ds);
    for (const auto& d : ds) {
      ++outdoor_frames;
      if (!d.decision.accepted) ++offsite_drops;
    }
  }
  std::printf("phase 3 — off-site transmitter: %d/%d frames denied\n",
              offsite_drops, outdoor_frames);

  const auto st = engine.stats();
  const auto sp = engine.spoof_detector().stats();
  std::printf("\ntotals: %zu frames | %zu accepted | %zu dropped\n", st.frames,
              st.accepted, st.frames - st.accepted);
  std::printf("\n%-10s %10s %10s %10s\n", "policy", "evaluated", "accepted",
              "dropped");
  for (const auto& ps : engine.chain().policy_stats()) {
    std::printf("%-10.*s %10zu %10zu %10zu\n",
                static_cast<int>(ps.name.size()), ps.name.data(), ps.evaluated,
                ps.accepted, ps.dropped);
  }
  std::printf("\nspoof trackers: %zu MAC(s) across %zu shard(s), %zu alarms, "
              "%zu evicted\n",
              sp.tracked_macs, engine.spoof_detector().num_shards(), sp.alarms,
              sp.evictions);
  if (writer) {
    writer->close();
    std::printf("\ncapture: %s (%llu chunks, %llu decisions, %llu drains)\n",
                writer->path().c_str(),
                static_cast<unsigned long long>(writer->chunks_recorded()),
                static_cast<unsigned long long>(writer->decisions_recorded()),
                static_cast<unsigned long long>(writer->drains_recorded()));
  }
  return 0;
}
