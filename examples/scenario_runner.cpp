// Scenario runner: a CLI over the full SecureAngle system. Builds the
// Figure-4 office with a configurable multi-AP deployment, runs a mixed
// workload (legitimate uplink traffic + MAC-spoofing attacker + off-site
// transmitter), streams every AP's samples through the engine, and
// prints a security report with per-policy statistics.
//
// Two modes:
//  - batch (default): the three-phase scripted workload through the
//    lock-step DeploymentEngine, one ingest round per transmission.
//  - streaming (--duration): Poisson frame arrivals pushed into an
//    EngineSession for a simulated wall-clock span — chunks go in as
//    they "arrive" while earlier rounds are still deciding, so this
//    workload cannot be expressed as a sequence of batch rounds.
//
// Usage: scenario_runner [options] [seed [packets [num-aps]]]
//   --seed N          RNG seed                       (default 7)
//   --packets N       frames per client per phase    (default 10)
//   --aps N           access points, any count >= 1  (default 3)
//   --threads N       engine worker threads, 0=auto  (default 1)
//   --estimator NAME  music|capon|bartlett|root-music|esprit (default music)
//   --subbands K      wideband subbands per packet, power of two (default 1)
//   --band-fusion F   uniform|snr wideband signature fusion (default uniform)
//   --policies LIST   comma-separated chain order from acl,fence,spoof,rate
//                     (default spoof,fence; decode is always implicit first;
//                     acl allows exactly the testbed's legitimate clients)
//   --duration S      streaming mode: simulated seconds of traffic
//   --arrival-rate R  streaming mode: mean frame arrivals/sec (default 40)
// e.g.:  ./build/examples/scenario_runner --aps 6 --threads 4
//            --subbands 4 --policies acl,fence,spoof,rate
//        ./build/examples/scenario_runner --threads 4 --duration 2
//            --arrival-rate 80
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "sa/common/rng.hpp"
#include "sa/dsp/fft.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

using namespace sa;

namespace {

[[noreturn]] void print_usage(std::FILE* to, const char* argv0, int status) {
  std::fprintf(to,
               "usage: %s [--seed N] [--packets N] [--aps N] [--threads N]\n"
               "          [--estimator music|capon|bartlett|root-music|esprit]\n"
               "          [--subbands K] [--band-fusion uniform|snr]\n"
               "          [--policies acl,fence,spoof,rate]\n"
               "          [--duration S] [--arrival-rate R]\n"
               "          [seed [packets [num-aps]]]\n",
               argv0);
  std::exit(status);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0, 2);
}

std::vector<PolicyKind> parse_policies(const std::string& list,
                                       const char* argv0) {
  std::vector<PolicyKind> kinds;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const auto kind = policy_kind_from_string(name);
    if (!kind) {
      std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
      usage(argv0);
    }
    kinds.push_back(*kind);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kinds.empty()) usage(argv0);
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  int packets = 10;
  std::size_t num_aps = 3;
  std::size_t threads = 1;
  std::size_t subbands = 1;
  AoaBackend estimator = AoaBackend::kMusic;
  BandFusion band_fusion = BandFusion::kUniform;
  std::vector<PolicyKind> policies = default_policy_chain();
  double duration_s = 0.0;      // > 0 selects streaming mode
  double arrival_rate = 40.0;   // mean frames/sec in streaming mode

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Every flag accepts both "--flag value" and "--flag=value".
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> const char* {
      if (inline_value) return inline_value->c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--packets") {
      packets = std::atoi(value());
    } else if (arg == "--aps") {
      num_aps = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--estimator") {
      const char* name = value();
      const auto parsed = aoa_backend_from_string(name);
      if (!parsed) {
        std::fprintf(stderr, "unknown estimator '%s' (valid: %s)\n", name,
                     aoa_backend_names());
        usage(argv[0]);
      }
      estimator = *parsed;
    } else if (arg == "--subbands") {
      subbands = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--band-fusion") {
      const char* name = value();
      const auto parsed = band_fusion_from_string(name);
      if (!parsed) {
        std::fprintf(stderr, "unknown band fusion '%s' (valid: uniform, snr)\n",
                     name);
        usage(argv[0]);
      }
      band_fusion = *parsed;
    } else if (arg == "--duration") {
      duration_s = std::strtod(value(), nullptr);
    } else if (arg == "--arrival-rate") {
      arrival_rate = std::strtod(value(), nullptr);
    } else if (arg == "--policies") {
      policies = parse_policies(value(), argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0], 0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      // Legacy positional form: seed packets num-aps.
      switch (positional++) {
        case 0: seed = std::strtoull(arg.c_str(), nullptr, 10); break;
        case 1: packets = std::atoi(arg.c_str()); break;
        case 2: num_aps = std::strtoul(arg.c_str(), nullptr, 10); break;
        default: usage(argv[0]);
      }
    }
  }
  if (packets < 1 || num_aps < 1) usage(argv[0]);
  if (!is_pow2(subbands) || subbands > 64) {
    std::fprintf(stderr,
                 "--subbands must be a power of two in [1, 64], got %zu\n",
                 subbands);
    usage(argv[0]);
  }
  if (duration_s < 0.0 || (duration_s > 0.0 && arrival_rate <= 0.0)) {
    std::fprintf(stderr, "--duration needs a positive --arrival-rate\n");
    usage(argv[0]);
  }

  const auto tb = OfficeTestbed::figure4();
  Rng rng(seed);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::vector<AccessPoint*> ap_ptrs;
  for (const Vec2& spot : tb.ap_mounting_points(num_aps)) {
    AccessPointConfig cfg;
    cfg.position = spot;
    cfg.estimator = estimator;
    cfg.subbands = subbands;
    cfg.band_fusion = band_fusion;
    aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    ap_ptrs.push_back(aps.back().get());
    sim.add_ap(aps.back()->placement());
  }

  EngineConfig ecfg;
  ecfg.num_threads = threads;
  ecfg.coordinator.fence_boundary = tb.building_outline();
  ecfg.coordinator.min_aps_for_fence = 2;
  ecfg.coordinator.policies = policies;
  {
    // The ACL baseline allows exactly the testbed's legitimate clients —
    // which is why MAC spoofing subverts it (paper §1).
    AccessControlList acl;
    for (const auto& c : tb.clients()) acl.allow(MacAddress::from_index(c.id));
    ecfg.coordinator.acl = std::move(acl);
  }
  // ---- Streaming mode: Poisson arrivals pushed into an EngineSession.
  // There is no round cadence the caller could batch on: frames arrive
  // whenever the arrival process says, the session pipelines them, and
  // decisions stream out through the sink while later chunks go in.
  if (duration_s > 0.0) {
    SessionConfig scfg;
    scfg.engine = ecfg;
    std::size_t accepted = 0, dropped = 0;
    EngineSession session(scfg, ap_ptrs, [&](const EngineDecision& d) {
      (d.decision.accepted ? accepted : dropped)++;
    });
    std::printf(
        "streaming deployment: %zu AP(s), %zu engine thread(s), estimator %s, "
        "%zu subband(s), %s fusion, seed %llu\n"
        "Poisson arrivals: %.1f frames/s for %.2f simulated seconds\n",
        num_aps, session.num_threads(), to_string(estimator), subbands,
        std::string(to_string(band_fusion)).c_str(),
        static_cast<unsigned long long>(seed), arrival_rate, duration_s);

    TxPattern amp;
    amp.tx_power_db = 15.0;
    std::uint16_t sseq = 0;
    std::size_t sent = 0, spoofed = 0, offsite = 0;
    double t = 0.0;
    for (;;) {
      const double dt = -std::log(1.0 - rng.uniform(0.0, 1.0)) / arrival_rate;
      if (t + dt >= duration_s) break;
      t += dt;
      sim.advance(dt);
      Vec2 from;
      MacAddress mac = MacAddress::from_index(0);
      const TxPattern* pat = nullptr;
      const double pick = rng.uniform(0.0, 1.0);
      if (pick < 0.8) {
        const auto& clients = tb.clients();
        const auto& c = clients[std::min(
            clients.size() - 1,
            static_cast<std::size_t>(rng.uniform(
                0.0, static_cast<double>(clients.size()))))];
        from = c.position;
        mac = MacAddress::from_index(c.id);
      } else if (pick < 0.9) {
        from = tb.client(17).position;  // insider spoofing client 2's MAC
        mac = MacAddress::from_index(2);
        ++spoofed;
      } else {
        from = tb.outdoor_positions()[0];
        mac = MacAddress::from_index(200);
        pat = &amp;
        ++offsite;
      }
      const Frame f =
          Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, sseq++);
      const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      session.submit_round(sim.transmit(from, w, pat));
      ++sent;
    }
    session.drain();

    const auto st = session.stats();
    const auto ss = session.session_stats();
    const auto sp = session.spoof_detector().stats();
    std::printf("\ntraffic: %zu frames sent (%zu spoofed, %zu off-site)\n",
                sent, spoofed, offsite);
    std::printf("decisions: %zu frames | %zu accepted | %zu dropped\n",
                st.frames, accepted, dropped);
    std::printf("\n%-10s %10s %10s %10s\n", "policy", "evaluated", "accepted",
                "dropped");
    for (const auto& ps : session.chain().policy_stats()) {
      std::printf("%-10.*s %10zu %10zu %10zu\n",
                  static_cast<int>(ps.name.size()), ps.name.data(),
                  ps.evaluated, ps.accepted, ps.dropped);
    }
    std::printf("\nspoof trackers: %zu MAC(s) across %zu shard(s), %zu alarms\n",
                sp.tracked_macs, session.spoof_detector().num_shards(),
                sp.alarms);
    std::printf(
        "pipeline: %zu rounds, max %zu rounds overlapped in the dataplane, "
        "%zu candidate frames in flight at peak, %zu deferred retries\n",
        ss.rounds_completed, ss.max_overlapped_rounds, ss.max_inflight_frames,
        ss.stale_retries);
    std::printf(
        "pipeline: %zu worker jobs in %zu bursts (max burst %zu), "
        "%zu submit-ring blocks, %zu spin polls, %zu parks\n",
        ss.worker_jobs, ss.worker_bursts, ss.max_worker_burst,
        ss.submit_ring_full_blocks, ss.spin_polls, ss.parks);
    session.close();
    return 0;
  }

  DeploymentEngine engine(ecfg, ap_ptrs);

  std::string chain_names = "decode";
  for (std::size_t i = 1; i < engine.chain().size(); ++i) {
    chain_names += "->";
    chain_names += engine.chain().policy(i).name();
  }
  std::printf(
      "deployment: %zu AP(s), %zu engine thread(s), estimator %s, "
      "%zu subband(s), seed %llu, %d packets/client\npolicy chain: %s\n",
      num_aps, engine.num_threads(), to_string(estimator), subbands,
      static_cast<unsigned long long>(seed), packets, chain_names.c_str());

  std::uint16_t seq = 0;
  auto send = [&](Vec2 from, MacAddress mac,
                  const TxPattern* pat) -> std::vector<EngineDecision> {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    auto decisions = engine.ingest(sim.transmit(from, w, pat));
    sim.advance(0.25);
    return decisions;
  };
  auto drain = [&](std::vector<EngineDecision>& into) {
    for (auto& d : engine.flush()) into.push_back(std::move(d));
  };

  // Phase 1: every client associates and sends `packets` frames.
  int accepted = 0, dropped = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (const auto& c : tb.clients()) {
        for (auto& d :
             send(c.position, MacAddress::from_index(c.id), nullptr)) {
          ds.push_back(std::move(d));
        }
      }
    }
    drain(ds);
    for (const auto& d : ds) (d.decision.accepted ? accepted : dropped)++;
  }
  std::printf("\nphase 1 — legitimate traffic: %d accepted, %d dropped "
              "(%.1f%% false drop)\n",
              accepted, dropped,
              100.0 * dropped / std::max(accepted + dropped, 1));

  // Phase 2: an insider spoofs client 2's MAC from the far office. The
  // ACL waves these through (the MAC is on the list) — only the
  // signature check catches them.
  int spoof_caught = 0, spoof_missed = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (auto& d :
           send(tb.client(17).position, MacAddress::from_index(2), nullptr)) {
        ds.push_back(std::move(d));
      }
    }
    drain(ds);
    for (const auto& d : ds) {
      (d.decision.policy == SpoofPolicy::kName ? spoof_caught
                                               : spoof_missed)++;
    }
  }
  std::printf("phase 2 — MAC spoofing insider: %d/%d forged frames dropped\n",
              spoof_caught, spoof_caught + spoof_missed);

  // Phase 3: off-site transmitter with a power amp. Fail-closed fence:
  // frames heard by too few APs to localize are dropped rather than
  // waved through (and its unknown MAC fails the ACL, when enabled).
  TxPattern amp;
  amp.tx_power_db = 15.0;
  int offsite_drops = 0, outdoor_frames = 0;
  {
    std::vector<EngineDecision> ds;
    for (int p = 0; p < packets; ++p) {
      for (auto& d : send(tb.outdoor_positions()[0],
                          MacAddress::from_index(200), &amp)) {
        ds.push_back(std::move(d));
      }
    }
    drain(ds);
    for (const auto& d : ds) {
      ++outdoor_frames;
      if (!d.decision.accepted) ++offsite_drops;
    }
  }
  std::printf("phase 3 — off-site transmitter: %d/%d frames denied\n",
              offsite_drops, outdoor_frames);

  const auto st = engine.stats();
  const auto sp = engine.spoof_detector().stats();
  std::printf("\ntotals: %zu frames | %zu accepted | %zu dropped\n", st.frames,
              st.accepted, st.frames - st.accepted);
  std::printf("\n%-10s %10s %10s %10s\n", "policy", "evaluated", "accepted",
              "dropped");
  for (const auto& ps : engine.chain().policy_stats()) {
    std::printf("%-10.*s %10zu %10zu %10zu\n",
                static_cast<int>(ps.name.size()), ps.name.data(), ps.evaluated,
                ps.accepted, ps.dropped);
  }
  std::printf("\nspoof trackers: %zu MAC(s) across %zu shard(s), %zu alarms, "
              "%zu evicted\n",
              sp.tracked_macs, engine.spoof_detector().num_shards(), sp.alarms,
              sp.evictions);
  return 0;
}
