// Quickstart: the smallest end-to-end SecureAngle flow.
//
// Build an 8-antenna octagon AP, put one client in a one-room world,
// transmit a single 802.11 frame, and read back what the AP saw: the
// decoded frame, the estimated bearing, and the AoA signature's peaks.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "sa/common/rng.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"

using namespace sa;

int main() {
  Rng rng(1);

  // --- A one-room world: 12 x 10 m, one client, one AP.
  Floorplan room;
  room.add_room({0.0, 0.0}, {12.0, 10.0});
  const Vec2 client_pos{9.0, 7.0};
  const Vec2 ap_pos{3.0, 3.0};

  // --- The AP: octagon array (the paper's prototype geometry), with
  // random per-chain LO phases that the built-in calibration removes.
  AccessPointConfig cfg;
  cfg.position = ap_pos;
  AccessPoint ap(cfg, rng);

  // --- Client transmits one uplink data frame.
  const auto client_mac = MacAddress::parse("02:5a:00:00:00:01");
  const Frame frame = Frame::data(MacAddress::parse("02:5a:00:00:00:ff"),
                                  client_mac, Bytes{'h', 'i'}, /*sequence=*/1);
  const PacketTransmitter tx(PhyRate::k6Mbps);
  const CVec waveform = tx.transmit(frame.serialize());

  // --- Propagate through the multipath channel to the AP's antennas.
  const RayTracer tracer;
  const auto paths = tracer.trace(client_pos, ap_pos, room);
  std::printf("channel: %zu propagation paths (direct + reflections)\n",
              paths.size());
  ChannelConfig ch;
  ch.noise_power = 1e-5;
  const ChannelSimulator sim(ch);
  const CMat rx_samples = sim.propagate(waveform, paths, ap.placement(), rng);

  // --- The AP does the rest: detect, decode, AoA, signature.
  const auto packets = ap.receive(rx_samples);
  if (packets.empty()) {
    std::printf("no packet detected?!\n");
    return 1;
  }
  const ReceivedPacket& pkt = packets.front();

  std::printf("detected packet at sample %zu (Schmidl-Cox metric %.2f)\n",
              pkt.detection.start, pkt.detection.metric);
  if (pkt.frame) {
    std::printf("decoded frame from %s, %zu payload bytes, FCS ok\n",
                pkt.frame->addr2.to_string().c_str(), pkt.frame->body.size());
  }
  const double truth = bearing_deg(ap_pos, client_pos);
  std::printf("bearing estimate: %.1f deg (ground truth %.1f deg)\n",
              pkt.bearing_world_deg[0], truth);
  std::printf("AoA signature peaks (bearing, relative height):\n");
  for (const auto& p : pkt.signature.peaks()) {
    std::printf("  %6.1f deg   %6.1f dB\n", p.angle_deg, p.value_db);
  }
  std::printf("the strongest peak is the direct path; the others are wall\n"
              "reflections — together they form this client's signature.\n");
  return 0;
}
